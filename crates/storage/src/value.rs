//! Typed scalar values and their data types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The data types supported by the storage engine.
///
/// `Date` is stored as days since 1970-01-01, which is enough for TPC-D style
/// date arithmetic and range predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Str,
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "VARCHAR"),
            DataType::Date => write!(f, "DATE"),
        }
    }
}

impl DataType {
    /// Approximate width in bytes of one value of this type; used by the
    /// statistics-creation cost model (cost of scanning a column is
    /// proportional to `rows * width`).
    pub fn byte_width(self) -> usize {
        match self {
            DataType::Int => 8,
            DataType::Float => 8,
            DataType::Str => 16,
            DataType::Date => 4,
        }
    }
}

/// A scalar value. `Null` compares less than every non-null value so that
/// sorting and histogram construction have a total order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// The data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value used for histogram bucket boundaries.
    /// Strings hash onto a stable numeric key preserving lexicographic order
    /// over the first eight bytes, which is the usual trick for string
    /// histograms.
    pub fn numeric_key(&self) -> f64 {
        match self {
            Value::Null => f64::NEG_INFINITY,
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Date(d) => *d as f64,
            Value::Str(s) => {
                let mut key: u64 = 0;
                for (i, b) in s.bytes().take(8).enumerate() {
                    key |= (b as u64) << (56 - 8 * i);
                }
                key as f64
            }
        }
    }

    /// True when `self op other` holds under SQL comparison semantics
    /// (`Null` compared with anything is false).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order used for sorting; `Null` sorts first.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Date(a), Date(b)) => a.cmp(b),
            (Int(a), Date(b)) => a.cmp(&(*b as i64)),
            (Date(a), Int(b)) => (*a as i64).cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Cross-type comparisons between incompatible types fall back to
            // the numeric key so the order is still total.
            (a, b) => a.numeric_key().total_cmp(&b.numeric_key()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                // Hash floats by bit pattern of the canonicalized value so
                // that `Int(2)` and `Float(2.0)` do NOT collide silently:
                // join keys are always same-typed in our plans.
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

/// A borrowed view of a stored scalar: the columnar executor's currency.
///
/// `ValueRef` lets hot loops compare, hash, and fingerprint column entries
/// without materializing a [`Value`] — which for `Str` columns means no
/// per-row `String` clone. Its comparison and hash semantics mirror `Value`
/// exactly: `a.as_ref().total_cmp(&b.as_ref()) == a.total_cmp(&b)` and
/// `hash(a.as_ref()) == hash(a)` for every value, so a fingerprint computed
/// from refs agrees with one computed from owned values.
#[derive(Debug, Clone, Copy)]
pub enum ValueRef<'a> {
    Null,
    Int(i64),
    Float(f64),
    Str(&'a str),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Value {
    /// Borrowed view of this value.
    pub fn as_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Null => ValueRef::Null,
            Value::Int(i) => ValueRef::Int(*i),
            Value::Float(f) => ValueRef::Float(*f),
            Value::Str(s) => ValueRef::Str(s),
            Value::Date(d) => ValueRef::Date(*d),
        }
    }
}

impl<'a> ValueRef<'a> {
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Materialize an owned [`Value`] (clones the string payload).
    pub fn to_value(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Float(f) => Value::Float(*f),
            ValueRef::Str(s) => Value::Str((*s).to_string()),
            ValueRef::Date(d) => Value::Date(*d),
        }
    }

    /// Mirror of [`Value::numeric_key`].
    pub fn numeric_key(&self) -> f64 {
        match self {
            ValueRef::Null => f64::NEG_INFINITY,
            ValueRef::Int(i) => *i as f64,
            ValueRef::Float(f) => *f,
            ValueRef::Date(d) => *d as f64,
            ValueRef::Str(s) => {
                let mut key: u64 = 0;
                for (i, b) in s.bytes().take(8).enumerate() {
                    key |= (b as u64) << (56 - 8 * i);
                }
                key as f64
            }
        }
    }

    /// Mirror of [`Value::total_cmp`]: the same total order, computed on
    /// borrowed payloads.
    pub fn total_cmp(&self, other: &ValueRef<'_>) -> Ordering {
        use ValueRef::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Date(a), Date(b)) => a.cmp(b),
            (Int(a), Date(b)) => a.cmp(&(*b as i64)),
            (Date(a), Int(b)) => (*a as i64).cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => a.numeric_key().total_cmp(&b.numeric_key()),
        }
    }

    /// Mirror of [`Value::sql_cmp`]: `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &ValueRef<'_>) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }
}

impl PartialEq for ValueRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

// Mirror of `Value`'s Hash impl (type tag + canonical payload bits), kept
// adjacent in spirit: the two MUST stay in sync so fingerprints computed
// from column refs agree with ones computed from owned values.
impl Hash for ValueRef<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            ValueRef::Null => 0u8.hash(state),
            ValueRef::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            ValueRef::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            ValueRef::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            ValueRef::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Date(d) => write!(f, "DATE {d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(-1)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-1));
    }

    #[test]
    fn sql_cmp_with_null_is_none() {
        assert!(Value::Null.sql_cmp(&Value::Int(1)).is_none());
        assert!(Value::Int(1).sql_cmp(&Value::Null).is_none());
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Date(10).total_cmp(&Value::Int(9)), Ordering::Greater);
    }

    #[test]
    fn string_numeric_key_preserves_prefix_order() {
        let a = Value::Str("apple".into());
        let b = Value::Str("banana".into());
        assert!(a.numeric_key() < b.numeric_key());
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::Str("x".into());
        let b = Value::Str("x".into());
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
        assert_eq!(Value::Int(7).to_string(), "7");
    }

    #[test]
    fn byte_widths() {
        assert_eq!(DataType::Int.byte_width(), 8);
        assert_eq!(DataType::Date.byte_width(), 4);
    }
}
