//! # autostats — Automating Statistics Management for Query Optimizers
//!
//! A faithful reproduction of Chaudhuri & Narasayya, *Automating Statistics
//! Management for Query Optimizers* (ICDE 2000), over the pure-Rust database
//! substrate in this workspace (`storage`, `query`, `stats`, `optimizer`,
//! `executor`).
//!
//! The paper's problem: which statistics (histograms / multi-column
//! densities) should a database build and maintain so the optimizer picks
//! (nearly) the plans it would pick with *all* syntactically relevant
//! statistics — without paying for all of them? Its answers, all here:
//!
//! * [`candidates`] — the candidate-statistics algorithm of §7.1 (and the
//!   Exhaustive strategy it is evaluated against in Figure 3);
//! * [`equivalence`] — Execution-Tree / Optimizer-Cost / t-Optimizer-Cost
//!   equivalence of statistics sets (§3.2) and essential-set checking (§3.3);
//! * [`mnsa`] — **Magic Number Sensitivity Analysis** (§4, Figure 1) with
//!   `FindNextStatToBuild` (§4.2), plus the MNSA/D drop-detection variant
//!   (§5.1);
//! * [`shrinking`] — the **Shrinking Set** algorithm (§5.2, Figure 2) that
//!   guarantees an essential set;
//! * [`policy`] — the §6 policy layer: on-the-fly tuning per incoming query,
//!   periodic offline tuning, aging, and the auto-update/auto-drop loop;
//! * [`manager`] — an `AutoStatsManager` facade tying a database, a
//!   statistics catalog, the optimizer and a policy together behind a
//!   `execute_sql`-style API.
//!
//! ## Quickstart
//!
//! ```
//! use autostats::manager::{AutoStatsManager, ManagerConfig};
//! use datagen::{build_tpcd, TpcdConfig, ZipfSpec};
//!
//! // A small, skewed TPC-D instance and a self-tuning manager whose default
//! // policy runs MNSA before optimizing each incoming query.
//! let db = build_tpcd(&TpcdConfig { scale: 0.002, zipf: ZipfSpec::Mixed, seed: 42 });
//! let mut mgr = AutoStatsManager::new(db, ManagerConfig::default());
//!
//! let out = mgr.execute_sql(
//!     "SELECT o_orderpriority, COUNT(*) FROM orders \
//!      WHERE o_orderdate < 9000 GROUP BY o_orderpriority",
//! )?;
//! assert!(out.work() > 0.0);
//! // MNSA decided which of the candidate statistics were worth building:
//! assert!(mgr.tuning_report().optimizer_calls >= 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Library code must stay panic-free on arbitrary input; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod advisor;
mod batch;
pub mod candidates;
pub mod equivalence;
pub mod error;
pub mod faults;
pub mod journal;
pub mod manager;
pub mod mnsa;
pub mod online;
pub mod parallel;
pub mod policy;
pub mod shrinking;

pub use advisor::{advise, advise_parallel, AdvisorReport, Recommendation};
pub use candidates::{candidate_statistics, exhaustive_candidates, single_column_candidates};
pub use equivalence::Equivalence;
pub use error::TuneError;
pub use faults::{Fault, FaultPlan};
pub use journal::{OnlineEvent, QueryRecord, SessionReport};
pub use manager::{AutoStatsManager, ManagerConfig, ManagerError, ServeParts};
pub use mnsa::{
    CandidateMode, FeedbackSource, MnsaConfig, MnsaEngine, MnsaOutcome, NextStatOrder, Termination,
};
pub use online::{OnlineStep, OnlineTuner};
pub use parallel::ParallelTuner;
pub use policy::{CreationPolicy, OfflineTuner, TuningReport};
pub use shrinking::{shrinking_set, shrinking_set_traced, ShrinkingOutcome};
