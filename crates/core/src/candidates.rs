//! Candidate statistics for a query.
//!
//! §3.1 of the paper: a column is *relevant* when it appears in the WHERE
//! clause or the GROUP BY clause; candidate statistics are built over
//! relevant columns. The heuristic algorithm of §7.1 proposes, per query:
//!
//! (a) one single-column statistic per relevant column;
//! (b) per table, one multi-column statistic on the selection columns;
//! (c) per table, one multi-column statistic on the join columns;
//! (d) per table, one multi-column statistic on the GROUP BY columns.
//!
//! (Example 3: for `R1 ⋈ R2 on (a=b, c=d)` with predicates on e, f, g the
//! candidates are singles plus `(a,c)`, `(b,d)`, `(e,f,g)` — but *not*
//! `(e,f)`, `(f,g)`, `(e,g)`.) The **Exhaustive** strategy that Figure 3
//! compares against proposes every subset of each per-table column group.

use query::BoundSelect;
use stats::StatDescriptor;
use storage::TableId;

fn push_unique(out: &mut Vec<StatDescriptor>, d: StatDescriptor) {
    if !out.contains(&d) {
        out.push(d);
    }
}

/// Per-table relevant column groups of a query.
struct ColumnGroups {
    /// `(table, ordered columns)` — selection-predicate columns per table.
    selection: Vec<(TableId, Vec<usize>)>,
    /// Join columns per table.
    join: Vec<(TableId, Vec<usize>)>,
    /// GROUP BY columns per table.
    group_by: Vec<(TableId, Vec<usize>)>,
}

fn add_to_group(groups: &mut Vec<(TableId, Vec<usize>)>, table: TableId, col: usize) {
    if let Some((_, cols)) = groups.iter_mut().find(|(t, _)| *t == table) {
        if !cols.contains(&col) {
            cols.push(col);
        }
    } else {
        groups.push((table, vec![col]));
    }
}

fn column_groups(q: &BoundSelect) -> ColumnGroups {
    let mut g = ColumnGroups {
        selection: Vec::new(),
        join: Vec::new(),
        group_by: Vec::new(),
    };
    for p in &q.selections {
        add_to_group(
            &mut g.selection,
            q.table_of(p.column.relation),
            p.column.column,
        );
    }
    for e in &q.join_edges {
        for &(l, r) in &e.pairs {
            add_to_group(&mut g.join, q.table_of(e.left_rel), l);
            add_to_group(&mut g.join, q.table_of(e.right_rel), r);
        }
    }
    for c in &q.group_by {
        add_to_group(&mut g.group_by, q.table_of(c.relation), c.column);
    }
    g
}

/// The §7.1 candidate-statistics algorithm.
pub fn candidate_statistics(q: &BoundSelect) -> Vec<StatDescriptor> {
    let groups = column_groups(q);
    let mut out = Vec::new();
    // (a) one single-column statistic per relevant column.
    for (table, col) in q.relevant_columns() {
        push_unique(&mut out, StatDescriptor::single(table, col));
    }
    // (b)–(d) one multi-column statistic per table per group.
    for group in [&groups.selection, &groups.join, &groups.group_by] {
        for (table, cols) in group {
            if cols.len() >= 2 {
                push_unique(&mut out, StatDescriptor::multi(*table, cols.clone()));
            }
        }
    }
    out
}

/// Only the single-column candidates — the §8.2 variant experiment
/// ("candidate statistics considered were only single-column statistics on
/// relevant columns"), and also what SQL Server 7.0's auto-statistics mode
/// creates.
pub fn single_column_candidates(q: &BoundSelect) -> Vec<StatDescriptor> {
    q.relevant_columns()
        .into_iter()
        .map(|(t, c)| StatDescriptor::single(t, c))
        .collect()
}

/// The Exhaustive strategy (Figure 3's comparison point): *all*
/// syntactically relevant statistics — every single-column statistic plus a
/// multi-column statistic on **every subset of size ≥ 2 of each table's
/// relevant columns** (§3.1: "given a multi-column candidate statistic for a
/// query, any subset of those columns is also a candidate statistic").
/// Subset enumeration per table is capped at `max_group` columns (tables
/// with more relevant columns contribute their per-category groups and the
/// full union only) to keep the construction bounded.
pub fn exhaustive_candidates(q: &BoundSelect, max_group: usize) -> Vec<StatDescriptor> {
    let mut out = Vec::new();
    for (table, col) in q.relevant_columns() {
        push_unique(&mut out, StatDescriptor::single(table, col));
    }
    // Union of relevant columns per table, in first-occurrence order.
    let mut per_table: Vec<(TableId, Vec<usize>)> = Vec::new();
    for (table, col) in q.relevant_columns() {
        add_to_group(&mut per_table, table, col);
    }
    for (table, cols) in &per_table {
        if cols.len() < 2 {
            continue;
        }
        if cols.len() > max_group {
            // Too wide to enumerate: fall back to the heuristic's groups
            // plus the full union.
            for d in candidate_statistics(q) {
                if d.table == *table && d.is_multi_column() {
                    push_unique(&mut out, d);
                }
            }
            push_unique(&mut out, StatDescriptor::multi(*table, cols.clone()));
            continue;
        }
        // All subsets of size >= 2, columns kept in union order.
        let n = cols.len();
        for mask in 1u32..(1 << n) {
            if mask.count_ones() < 2 {
                continue;
            }
            let subset: Vec<usize> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| cols[i])
                .collect();
            push_unique(&mut out, StatDescriptor::multi(*table, subset));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::{bind_statement, parse_statement, BoundStatement};
    use storage::{ColumnDef, DataType, Database, Schema};

    /// The schema of the paper's Example 3: R1(a, c, e, f, g), R2(b, d).
    fn example3_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "r1",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("c", DataType::Int),
                ColumnDef::new("e", DataType::Int),
                ColumnDef::new("f", DataType::Int),
                ColumnDef::new("g", DataType::Int),
            ]),
        )
        .unwrap();
        db.create_table(
            "r2",
            Schema::new(vec![
                ColumnDef::new("b", DataType::Int),
                ColumnDef::new("d", DataType::Int),
            ]),
        )
        .unwrap();
        db
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!(),
        }
    }

    const EXAMPLE3_SQL: &str = "SELECT * FROM r1, r2 \
        WHERE r1.a = r2.b AND r1.c = r2.d \
          AND r1.e < 100 AND r1.f > 10 AND r1.g = 25";

    #[test]
    fn example3_candidates_match_paper() {
        let db = example3_db();
        let q = bind(&db, EXAMPLE3_SQL);
        let r1 = db.table_id("r1").unwrap();
        let r2 = db.table_id("r2").unwrap();
        let cands = candidate_statistics(&q);

        // Singles on a, c, e, f, g (r1 ordinals 0..5) and b, d (r2 0, 1).
        for c in 0..5 {
            assert!(
                cands.contains(&StatDescriptor::single(r1, c)),
                "missing single r1.{c}"
            );
        }
        for c in 0..2 {
            assert!(
                cands.contains(&StatDescriptor::single(r2, c)),
                "missing single r2.{c}"
            );
        }
        // Multi-column: (a, c) on r1, (b, d) on r2, (e, f, g) on r1.
        assert!(cands.contains(&StatDescriptor::multi(r1, vec![0, 1])));
        assert!(cands.contains(&StatDescriptor::multi(r2, vec![0, 1])));
        assert!(cands.contains(&StatDescriptor::multi(r1, vec![2, 3, 4])));
        // NOT proposed: (e, f), (f, g), (e, g).
        assert!(!cands.contains(&StatDescriptor::multi(r1, vec![2, 3])));
        assert!(!cands.contains(&StatDescriptor::multi(r1, vec![3, 4])));
        assert!(!cands.contains(&StatDescriptor::multi(r1, vec![2, 4])));
        assert_eq!(cands.len(), 7 + 3);
    }

    #[test]
    fn exhaustive_includes_all_selection_subsets() {
        let db = example3_db();
        let q = bind(&db, EXAMPLE3_SQL);
        let r1 = db.table_id("r1").unwrap();
        let cands = exhaustive_candidates(&q, 8);
        // The subsets the heuristic skips are present here.
        assert!(cands.contains(&StatDescriptor::multi(r1, vec![2, 3])));
        assert!(cands.contains(&StatDescriptor::multi(r1, vec![3, 4])));
        assert!(cands.contains(&StatDescriptor::multi(r1, vec![2, 4])));
        assert!(cands.contains(&StatDescriptor::multi(r1, vec![2, 3, 4])));
        assert!(cands.len() > candidate_statistics(&q).len());
    }

    #[test]
    fn exhaustive_caps_large_groups() {
        let db = example3_db();
        let q = bind(&db, EXAMPLE3_SQL);
        let capped = exhaustive_candidates(&q, 2);
        let r1 = db.table_id("r1").unwrap();
        // With max_group=2 the 3-column selection group only yields (e,f,g).
        assert!(capped.contains(&StatDescriptor::multi(r1, vec![2, 3, 4])));
        assert!(!capped.contains(&StatDescriptor::multi(r1, vec![2, 3])));
    }

    #[test]
    fn single_column_mode() {
        let db = example3_db();
        let q = bind(&db, EXAMPLE3_SQL);
        let singles = single_column_candidates(&q);
        assert_eq!(singles.len(), 7);
        assert!(singles.iter().all(|d| !d.is_multi_column()));
    }

    #[test]
    fn group_by_columns_produce_candidates() {
        let db = example3_db();
        let q = bind(&db, "SELECT e, f, COUNT(*) FROM r1 GROUP BY e, f");
        let r1 = db.table_id("r1").unwrap();
        let cands = candidate_statistics(&q);
        assert!(cands.contains(&StatDescriptor::single(r1, 2)));
        assert!(cands.contains(&StatDescriptor::single(r1, 3)));
        assert!(cands.contains(&StatDescriptor::multi(r1, vec![2, 3])));
        assert_eq!(cands.len(), 3);
    }

    /// The paper's footnote 1: a column referenced only in ORDER BY is not
    /// relevant — no statistics are proposed for it.
    #[test]
    fn order_by_columns_are_not_relevant() {
        let db = example3_db();
        let q = bind(&db, "SELECT * FROM r1 WHERE e < 100 ORDER BY f DESC, g");
        let r1 = db.table_id("r1").unwrap();
        let cands = candidate_statistics(&q);
        assert_eq!(cands, vec![StatDescriptor::single(r1, 2)]);
        let ex = exhaustive_candidates(&q, 8);
        assert_eq!(ex, vec![StatDescriptor::single(r1, 2)]);
    }

    #[test]
    fn no_predicates_no_candidates() {
        let db = example3_db();
        let q = bind(&db, "SELECT * FROM r1");
        assert!(candidate_statistics(&q).is_empty());
    }

    #[test]
    fn duplicate_columns_deduplicated() {
        let db = example3_db();
        // e appears in two predicates and in GROUP BY.
        let q = bind(
            &db,
            "SELECT e, COUNT(*) FROM r1 WHERE e > 1 AND e < 100 GROUP BY e",
        );
        let cands = candidate_statistics(&q);
        let r1 = db.table_id("r1").unwrap();
        assert_eq!(cands, vec![StatDescriptor::single(r1, 2)]);
    }
}
