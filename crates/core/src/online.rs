//! Incremental, budgeted MNSA for the online lifecycle daemon.
//!
//! The offline tuner ([`crate::OfflineTuner`]) runs MNSA over a whole
//! workload in one sitting. A background daemon cannot afford that: tuning
//! has to proceed in small increments, interleaved with staleness refreshes
//! and query traffic, and each increment must stop when it has spent its
//! share of build work. [`OnlineTuner`] is that incremental form:
//!
//! * queries arrive one at a time ([`OnlineTuner::enqueue`]), deduplicated
//!   by [`BoundSelect::fingerprint`] so a template is analyzed once no
//!   matter how often it executes;
//! * work is funded in **tokens** ([`OnlineTuner::fund`]) — deterministic
//!   work units covering statistic builds, refreshes, and analysis overhead
//!   (`optimizer_calls × optimizer_call_work`). Unspent tokens carry over;
//!   an increment that overshoots goes into *debt* and later ticks pay it
//!   down before new tuning runs. Budget is only checked between whole-query
//!   MNSA runs, never mid-query, so partial analyses never leak into the
//!   catalog;
//! * [`OnlineTuner::step`] drains the pending queue in FIFO order while the
//!   balance is positive — exactly the per-query loop of
//!   [`OfflineTuner::tune_session`](crate::OfflineTuner::tune_session) — and
//!   [`OnlineTuner::shrink_pass`] is exactly its Shrinking Set phase
//!   (including the epoch advance). Consequently a paused daemon that has
//!   drained its queue and run one shrink pass leaves the catalog
//!   bit-identical to an offline `tune` over the same sample.

use crate::equivalence::Equivalence;
use crate::error::TuneError;
use crate::mnsa::{MnsaConfig, MnsaEngine, MnsaOutcome};
use crate::policy::{optimizer_call_work, TuningReport};
use crate::shrinking::{shrinking_set_traced, ShrinkingOutcome};
use optimizer::OptimizeCache;
use query::BoundSelect;
use stats::StatsCatalog;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;
use storage::Database;

/// What one [`OnlineTuner::step`] increment did.
#[derive(Debug, Clone, Default)]
pub struct OnlineStep {
    /// `(relations, outcome)` per query tuned this increment, in order.
    pub tuned: Vec<(usize, MnsaOutcome)>,
    /// Totals for this increment (same shape as an offline pass report).
    pub report: TuningReport,
    /// Work tokens spent this increment.
    pub work: f64,
    /// True when the queue still holds queries but the balance ran out.
    pub exhausted: bool,
}

/// Resumable, budgeted MNSA over a live query sample. See the module docs.
pub struct OnlineTuner {
    engine: MnsaEngine,
    obs: obsv::Obs,
    pending: VecDeque<BoundSelect>,
    /// Fingerprints ever enqueued — a template is tuned at most once.
    enqueued: BTreeSet<u64>,
    /// Work-token balance: `fund` adds, tuning/`charge` subtract. May go
    /// negative (debt) when the last query of an increment overshoots.
    balance: f64,
}

impl OnlineTuner {
    pub fn new(config: MnsaConfig) -> Self {
        OnlineTuner {
            engine: MnsaEngine::new(config),
            obs: obsv::Obs::disabled(),
            pending: VecDeque::new(),
            enqueued: BTreeSet::new(),
            balance: 0.0,
        }
    }

    /// Attach an observability context (spans on MNSA runs and shrink
    /// passes). Observation-only: outcomes are bit-identical either way.
    pub fn with_obs(mut self, obs: obsv::Obs) -> Self {
        self.engine = self.engine.clone().with_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// Memoize tuning-time optimizer calls in `cache`.
    pub fn with_cache(mut self, cache: Arc<OptimizeCache>) -> Self {
        self.engine = self.engine.clone().with_cache(cache);
        self
    }

    /// The optimizer used for analysis calls (shared with shrink passes).
    pub fn optimizer(&self) -> &optimizer::Optimizer {
        &self.engine.optimizer
    }

    /// Queue a query template for analysis. Returns `false` (and does
    /// nothing) when a query with the same fingerprint was already enqueued
    /// at some point in this tuner's life.
    pub fn enqueue(&mut self, query: BoundSelect) -> bool {
        if !self.enqueued.insert(query.fingerprint()) {
            return false;
        }
        self.pending.push_back(query);
        true
    }

    /// Queries waiting for analysis.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Current work-token balance (negative = debt).
    pub fn balance(&self) -> f64 {
        self.balance
    }

    /// Add work tokens to the balance (one tick's allowance).
    pub fn fund(&mut self, tokens: f64) {
        self.balance += tokens;
    }

    /// Charge externally performed work (e.g. staleness refreshes) against
    /// the same token bucket, so refresh and tuning share one budget.
    pub fn charge(&mut self, work: f64) {
        self.balance -= work;
    }

    /// Run MNSA for pending queries, oldest first, while the balance is
    /// positive. Each query runs to completion and its full cost — the
    /// creation work of statistics it built plus `optimizer_calls ×
    /// optimizer_call_work(relations)` — is charged afterwards, possibly
    /// driving the balance negative.
    pub fn step(
        &mut self,
        db: &Database,
        catalog: &mut StatsCatalog,
    ) -> Result<OnlineStep, TuneError> {
        let mut step = OnlineStep::default();
        if self.pending.is_empty() {
            return Ok(step);
        }
        let mut span = self.obs.tracer.span("online.step");
        span.arg("pending", self.pending.len());
        while self.balance > 0.0 {
            let Some(query) = self.pending.pop_front() else {
                break;
            };
            let before_work = catalog.creation_work();
            let outcome = self.engine.run_query(db, catalog, &query)?;
            let overhead =
                outcome.optimizer_calls as f64 * optimizer_call_work(query.relations.len());
            let work = (catalog.creation_work() - before_work) + overhead;
            self.balance -= work;
            step.work += work;
            step.report.optimizer_calls += outcome.optimizer_calls;
            step.report.overhead_work += overhead;
            step.report.creation_work += catalog.creation_work() - before_work;
            step.report.statistics_created += outcome.created.len();
            step.report.statistics_drop_listed += outcome.drop_listed.len();
            step.tuned.push((query.relations.len(), outcome));
        }
        step.exhausted = !self.pending.is_empty();
        span.arg("tuned", step.tuned.len());
        span.arg("exhausted", step.exhausted);
        Ok(step)
    }

    /// One Shrinking Set pass over `sample` (typically the monitor's
    /// reservoir), applied to the catalog, followed by an epoch advance —
    /// the exact tail of an offline `tune_session`. The pass's analysis
    /// overhead is charged to the token balance.
    pub fn shrink_pass(
        &mut self,
        db: &Database,
        catalog: &mut StatsCatalog,
        sample: &[BoundSelect],
        equivalence: Equivalence,
    ) -> Result<ShrinkingOutcome, TuneError> {
        let initial = catalog.active_ids();
        let out = shrinking_set_traced(
            db,
            catalog,
            &self.engine.optimizer,
            sample,
            &initial,
            equivalence,
            true,
            &self.obs,
        )?;
        catalog.advance_epoch();
        let overhead = out.optimizer_calls as f64
            * optimizer_call_work(sample.iter().map(|q| q.relations.len()).max().unwrap_or(1));
        self.balance -= overhead;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OfflineTuner;
    use query::{bind_statement, parse_statement, BoundStatement};
    use storage::{ColumnDef, DataType, Schema, Value};

    fn test_db() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "facts",
                Schema::new(vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..2000i64 {
            db.table_mut(t)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 40),
                    Value::Int((i * 7) % 11),
                ])
                .unwrap();
        }
        db
    }

    fn select(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            other => panic!("expected select, got {other:?}"),
        }
    }

    fn workload(db: &Database) -> Vec<BoundSelect> {
        vec![
            select(db, "SELECT * FROM facts WHERE a = 3"),
            select(db, "SELECT * FROM facts WHERE b > 5 AND a < 10"),
            select(db, "SELECT * FROM facts WHERE k < 100"),
        ]
    }

    #[test]
    fn enqueue_deduplicates_by_fingerprint() {
        let db = test_db();
        let q = select(&db, "SELECT * FROM facts WHERE a = 3");
        let mut tuner = OnlineTuner::new(MnsaConfig::default());
        assert!(tuner.enqueue(q.clone()));
        assert!(!tuner.enqueue(q));
        assert_eq!(tuner.pending(), 1);
    }

    #[test]
    fn zero_balance_defers_all_work() {
        let db = test_db();
        let mut catalog = StatsCatalog::new();
        let mut tuner = OnlineTuner::new(MnsaConfig::default());
        for q in workload(&db) {
            tuner.enqueue(q);
        }
        let step = tuner.step(&db, &mut catalog).unwrap();
        assert!(step.tuned.is_empty());
        assert!(step.exhausted);
        assert_eq!(catalog.total_count(), 0);
    }

    #[test]
    fn overshoot_creates_debt_that_later_ticks_repay() {
        let db = test_db();
        let mut catalog = StatsCatalog::new();
        let mut tuner = OnlineTuner::new(MnsaConfig::default());
        for q in workload(&db) {
            tuner.enqueue(q);
        }
        // A tiny positive balance admits exactly one query, whose real cost
        // overshoots into debt.
        tuner.fund(1.0);
        let step = tuner.step(&db, &mut catalog).unwrap();
        assert_eq!(step.tuned.len(), 1);
        assert!(step.exhausted);
        assert!(tuner.balance() < 0.0, "balance: {}", tuner.balance());
        let debt = tuner.balance();

        // Funding less than the debt still runs nothing.
        tuner.fund(-debt / 2.0);
        let stalled = tuner.step(&db, &mut catalog).unwrap();
        assert!(stalled.tuned.is_empty());
        assert!(stalled.exhausted);

        // Paying off the debt (plus a little) resumes tuning.
        tuner.fund(-tuner.balance() + 1.0);
        let resumed = tuner.step(&db, &mut catalog).unwrap();
        assert!(!resumed.tuned.is_empty());
    }

    #[test]
    fn drained_tuner_plus_shrink_equals_offline_tune() {
        let db = test_db();
        let queries = workload(&db);

        let mut offline_catalog = StatsCatalog::new();
        let offline = OfflineTuner::default();
        let report = offline
            .tune(&db, &mut offline_catalog, &queries)
            .expect("offline tune");

        let mut online_catalog = StatsCatalog::new();
        let mut tuner = OnlineTuner::new(MnsaConfig::default());
        for q in queries.clone() {
            tuner.enqueue(q);
        }
        tuner.fund(f64::INFINITY);
        let step = tuner.step(&db, &mut online_catalog).unwrap();
        assert!(!step.exhausted);
        assert_eq!(step.report.statistics_created, report.statistics_created);
        tuner
            .shrink_pass(
                &db,
                &mut online_catalog,
                &queries,
                Equivalence::paper_default(),
            )
            .unwrap();

        assert_eq!(offline_catalog.snapshot(), online_catalog.snapshot());
    }
}
