//! The `AutoStatsManager` facade: a self-tuning mini database.
//!
//! Ties together the storage engine, the statistics catalog, the optimizer,
//! the executor and the §6 policies behind an `execute_sql` API, so the
//! examples and experiments can drive the whole system the way an
//! application would drive a server.

use crate::error::TuneError;
use crate::journal::SessionReport;
use crate::policy::{apply_policy_obs, CreationPolicy, TuningReport};
use crate::Equivalence;
use executor::{run_statement_traced, ExecError, StatementOutcome};
use optimizer::PlanError;
use optimizer::{CacheCounters, OptimizeCache, OptimizeOptions, Optimizer};
use query::{bind_statement, parse_statement, BindError, BoundStatement, ParseError, Statement};
use stats::{MaintenancePolicy, MaintenanceReport, StatsCatalog};
use std::fmt;
use std::sync::Arc;
use storage::Database;

/// Errors surfaced by the manager: every stage of the
/// parse → bind → tune → optimize → execute funnel has a typed variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerError {
    Parse(ParseError),
    Bind(BindError),
    /// Statistics tuning (the creation policy) failed.
    Tune(TuneError),
    /// Optimizing or executing the statement failed.
    Exec(ExecError),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::Parse(e) => write!(f, "{e}"),
            ManagerError::Bind(e) => write!(f, "{e}"),
            ManagerError::Tune(e) => write!(f, "{e}"),
            ManagerError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ManagerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManagerError::Parse(_) | ManagerError::Bind(_) => None,
            ManagerError::Tune(e) => Some(e),
            ManagerError::Exec(e) => Some(e),
        }
    }
}

impl From<ParseError> for ManagerError {
    fn from(e: ParseError) -> Self {
        ManagerError::Parse(e)
    }
}

impl From<BindError> for ManagerError {
    fn from(e: BindError) -> Self {
        ManagerError::Bind(e)
    }
}

impl From<TuneError> for ManagerError {
    fn from(e: TuneError) -> Self {
        ManagerError::Tune(e)
    }
}

impl From<ExecError> for ManagerError {
    fn from(e: ExecError) -> Self {
        ManagerError::Exec(e)
    }
}

impl From<PlanError> for ManagerError {
    fn from(e: PlanError) -> Self {
        ManagerError::Exec(ExecError::Plan(e))
    }
}

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// How statistics are created for incoming queries.
    pub creation: CreationPolicy,
    /// Auto-update/auto-drop policy for the maintenance loop.
    pub maintenance: MaintenancePolicy,
    /// Run the maintenance loop automatically after every DML statement.
    pub auto_maintain: bool,
    /// Equivalence notion reported by diagnostic helpers.
    pub equivalence: Equivalence,
    /// Memoize the tuning-time optimizer calls in an [`OptimizeCache`]
    /// attached to the catalog (mutations evict affected entries). Results
    /// are identical either way; repeated tuning just gets cheaper.
    pub optimizer_cache: bool,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            creation: CreationPolicy::default(),
            maintenance: MaintenancePolicy::default(),
            auto_maintain: true,
            equivalence: Equivalence::paper_default(),
            optimizer_cache: true,
        }
    }
}

/// Ownership bundle produced by [`AutoStatsManager::serve`]: everything an
/// online lifecycle daemon needs to take over a tuned (or fresh) manager.
pub struct ServeParts {
    pub db: Database,
    pub catalog: StatsCatalog,
    pub config: ManagerConfig,
    /// Memoized-optimizer cache, if the manager had one attached.
    pub cache: Option<Arc<OptimizeCache>>,
    pub obs: obsv::Obs,
    /// Journal accumulated before serving began; online events append here.
    pub session: SessionReport,
}

/// A self-tuning database: storage + statistics + optimizer + policy.
pub struct AutoStatsManager {
    db: Database,
    catalog: StatsCatalog,
    optimizer: Optimizer,
    config: ManagerConfig,
    /// Cumulative tuning activity.
    tuning: TuningReport,
    /// Cumulative execution work.
    execution_work: f64,
    /// Memoized-optimizer cache for tuning calls, attached to the catalog.
    cache: Option<Arc<OptimizeCache>>,
    /// Observability context threaded into tuning, builds, and execution.
    obs: obsv::Obs,
    /// Journal of every MNSA trajectory this manager ran.
    session: SessionReport,
}

impl AutoStatsManager {
    pub fn new(db: Database, config: ManagerConfig) -> Self {
        Self::new_with_obs(db, config, obsv::Obs::disabled())
    }

    /// [`AutoStatsManager::new`] with a live observability context: the
    /// optimizer cache registers its `optimizer.cache.*` counters, the
    /// catalog its `stats.*` build metrics, and execution mirrors its work
    /// into the `exec.work` counter. Tuning outcomes are bit-identical to an
    /// unobserved manager.
    pub fn new_with_obs(db: Database, config: ManagerConfig, obs: obsv::Obs) -> Self {
        let mut catalog = StatsCatalog::new();
        catalog.set_obs(&obs);
        let cache = config.optimizer_cache.then(|| {
            let cache = Arc::new(OptimizeCache::with_metrics(&obs.metrics));
            cache.attach(&mut catalog);
            cache
        });
        AutoStatsManager {
            db,
            catalog,
            optimizer: Optimizer::default(),
            config,
            tuning: TuningReport::default(),
            execution_work: 0.0,
            cache,
            obs,
            session: SessionReport::default(),
        }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut StatsCatalog {
        &mut self.catalog
    }

    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// Cumulative tuning report (statistics created, overhead, …).
    pub fn tuning_report(&self) -> &TuningReport {
        &self.tuning
    }

    /// Total execution work across all statements run through the manager.
    pub fn execution_work(&self) -> f64 {
        self.execution_work
    }

    /// The observability context this manager records into.
    pub fn obs(&self) -> &obsv::Obs {
        &self.obs
    }

    /// The tuning-session journal: one record per MNSA trajectory this
    /// manager ran for an incoming query.
    pub fn session_report(&self) -> &SessionReport {
        &self.session
    }

    /// Hit/miss/invalidation counters of the tuning-time optimizer cache;
    /// `None` when `ManagerConfig::optimizer_cache` is off.
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }

    /// Decompose the manager into the parts an online lifecycle daemon
    /// needs — the front door to serving mode.
    ///
    /// The manager's one-thread facade cannot host a background tuner, so
    /// instead of threading `&mut self` through a daemon, `serve()` hands
    /// over ownership of the database, catalog, policy configuration,
    /// observability context, and the journal accumulated so far. The
    /// `autod` crate assembles these into a running
    /// `OnlineService`/`LifecycleDaemon`; everything tuned while serving
    /// lands in the returned journal's continuation.
    pub fn serve(self) -> ServeParts {
        ServeParts {
            db: self.db,
            catalog: self.catalog,
            config: self.config,
            cache: self.cache,
            obs: self.obs,
            session: self.session,
        }
    }

    /// Parse, bind, tune (per policy), and execute one SQL statement.
    pub fn execute_sql(&mut self, sql: &str) -> Result<StatementOutcome, ManagerError> {
        let stmt = parse_statement(sql)?;
        self.execute(&stmt)
    }

    /// Bind, tune, and execute a parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        let bound = bind_statement(&self.db, stmt)?;
        self.execute_bound(&bound)
    }

    /// Execute a pre-bound statement.
    pub fn execute_bound(
        &mut self,
        bound: &BoundStatement,
    ) -> Result<StatementOutcome, ManagerError> {
        if let BoundStatement::Select(q) = bound {
            let (report, _, mnsa) = apply_policy_obs(
                &self.db,
                &mut self.catalog,
                &self.config.creation,
                q,
                self.cache.as_ref(),
                &self.obs,
            )?;
            self.tuning.absorb(&report);
            if let Some(outcome) = mnsa {
                self.session.record_query(q.relations.len(), &outcome);
            }
            self.session.totals.absorb(&report);
        }
        let outcome = run_statement_traced(
            &mut self.db,
            self.catalog.full_view(),
            &self.optimizer,
            bound,
            &self.obs.tracer,
        )?;
        self.execution_work += outcome.work();
        self.obs
            .metrics
            .float_counter("exec.work")
            .add(outcome.work());
        if self.config.auto_maintain && !matches!(bound, BoundStatement::Select(_)) {
            self.maintain();
        }
        Ok(outcome)
    }

    /// One pass of the §6 auto-update/auto-drop maintenance policy.
    pub fn maintain(&mut self) -> MaintenanceReport {
        self.catalog.maintain(&self.db, &self.config.maintenance)
    }

    /// EXPLAIN: the plan the optimizer currently picks for a query, without
    /// executing it or tuning statistics.
    pub fn explain_sql(&self, sql: &str) -> Result<String, ManagerError> {
        let stmt = parse_statement(sql)?;
        let bound = bind_statement(&self.db, &stmt)?;
        match bound {
            BoundStatement::Select(q) => {
                let r = self.optimizer.optimize(
                    &self.db,
                    &q,
                    self.catalog.full_view(),
                    &OptimizeOptions::default(),
                )?;
                Ok(format!(
                    "{}magic variables: {:?}\n",
                    r.plan, r.magic_variables
                ))
            }
            _ => Ok("DML statement (no plan)\n".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{ColumnDef, DataType, Schema, Value};

    fn setup() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "items",
                Schema::new(vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("cat", DataType::Int),
                    ColumnDef::new("price", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..3000i64 {
            let price = if i % 60 == 0 { 2000 } else { i % 300 };
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i % 9), Value::Int(price)])
                .unwrap();
        }
        #[allow(deprecated)]
        db.table_mut(t).reset_modification_counter();
        db
    }

    #[test]
    fn query_execution_with_auto_tuning() {
        let mut mgr = AutoStatsManager::new(setup(), ManagerConfig::default());
        let out = mgr
            .execute_sql("SELECT * FROM items WHERE price > 1500 AND cat = 3")
            .unwrap();
        match out {
            StatementOutcome::Query { output, .. } => {
                assert!(output.row_count() > 0);
            }
            _ => panic!(),
        }
        // MNSA ran and may have created statistics; overhead was charged.
        assert!(mgr.tuning_report().optimizer_calls >= 3);
        assert!(mgr.execution_work() > 0.0);
    }

    #[test]
    fn repeated_query_does_not_retune() {
        let mut mgr = AutoStatsManager::new(setup(), ManagerConfig::default());
        let sql = "SELECT * FROM items WHERE price > 1500";
        mgr.execute_sql(sql).unwrap();
        let created_once = mgr.tuning_report().statistics_created;
        mgr.execute_sql(sql).unwrap();
        assert_eq!(mgr.tuning_report().statistics_created, created_once);
    }

    #[test]
    fn dml_triggers_auto_maintenance() {
        let mut mgr = AutoStatsManager::new(
            setup(),
            ManagerConfig {
                maintenance: MaintenancePolicy {
                    update_fraction: 0.0,
                    min_modified_rows: 0,
                    max_updates: 100,
                    drop_only_droplisted: true,
                },
                ..Default::default()
            },
        );
        mgr.execute_sql("SELECT * FROM items WHERE price > 1500")
            .unwrap();
        let stats_before = mgr.catalog().total_count();
        mgr.execute_sql("DELETE FROM items WHERE id < 30").unwrap();
        // Maintenance ran: every statistic on items was refreshed (its
        // staleness baseline is the current, never-reset counter value).
        let t = mgr.database().table_id("items").unwrap();
        let counter = mgr.database().table(t).modification_counter();
        assert!(counter > 0);
        assert!(mgr
            .catalog()
            .built_on_table(t)
            .all(|s| s.update_count >= 1 && s.mods_at_build == counter));
        assert_eq!(mgr.catalog().total_count(), stats_before);
    }

    #[test]
    fn parse_and_bind_errors_surface() {
        let mut mgr = AutoStatsManager::new(setup(), ManagerConfig::default());
        assert!(matches!(
            mgr.execute_sql("SELEC oops"),
            Err(ManagerError::Parse(_))
        ));
        assert!(matches!(
            mgr.execute_sql("SELECT * FROM missing"),
            Err(ManagerError::Bind(_))
        ));
    }

    #[test]
    fn explain_renders_plan() {
        let mgr = AutoStatsManager::new(setup(), ManagerConfig::default());
        let text = mgr
            .explain_sql("SELECT cat, COUNT(*) FROM items WHERE price > 100 GROUP BY cat")
            .unwrap();
        assert!(text.contains("HashAggregate"));
        assert!(text.contains("SeqScan"));
        assert!(text.contains("magic variables"));
    }

    #[test]
    fn manual_policy_never_creates() {
        let mut mgr = AutoStatsManager::new(
            setup(),
            ManagerConfig {
                creation: CreationPolicy::Manual,
                ..Default::default()
            },
        );
        mgr.execute_sql("SELECT * FROM items WHERE price > 1500")
            .unwrap();
        assert_eq!(mgr.catalog().total_count(), 0);
    }
}
