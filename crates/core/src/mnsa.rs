//! Magic Number Sensitivity Analysis (MNSA) — §4 of the paper, Figure 1 —
//! and its drop-detecting variant MNSA/D (§5.1).
//!
//! MNSA sidesteps the chicken-and-egg problem of statistics selection
//! ("usefulness can be determined only after construction"): instead of
//! building a statistic to see whether it matters, it asks the optimizer how
//! *sensitive* the plan cost is to the selectivity variables that currently
//! fall back to magic numbers. It forces all of them to ε (plan `P_low`) and
//! to 1−ε (plan `P_high`); under the cost-monotonicity assumption these
//! bound every cost reachable with real statistics, so if the two costs are
//! within t% the existing statistics already include an essential set and no
//! more need be built.
//!
//! When the test fails, `FindNextStatToBuild` (§4.2) picks the next
//! statistic: the candidates relevant to the **most expensive operator** of
//! the current (magic-number) plan, where an operator's own cost is its
//! subtree cost minus its children's subtree costs. Join-column statistics
//! are created in **pairs** (the dependency noted in §4.2).
//!
//! MNSA/D additionally compares the plan after each creation with the plan
//! before it; if they are execution-tree-equivalent the new statistic is
//! heuristically marked non-essential and moved to the drop-list (§5.1).

use crate::candidates::{candidate_statistics, exhaustive_candidates, single_column_candidates};
use crate::error::TuneError;
use optimizer::{
    Operator, OptimizeCache, OptimizeOptions, OptimizedQuery, Optimizer, PlanError, PlanNode,
};
use parking_lot::Mutex;
use query::{BoundSelect, PredicateId};
use serde::{Deserialize, Serialize};
use stats::{AgingPolicy, FeedbackConfig, FeedbackStore, StatDescriptor, StatId, StatsCatalog};
use std::sync::Arc;
use storage::Database;

/// Which candidate-statistics strategy feeds MNSA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CandidateMode {
    /// The §7.1 heuristic (default).
    #[default]
    Heuristic,
    /// Single-column statistics only (the §8.2 variant).
    SingleColumnOnly,
    /// Every subset of each relevant column group (Figure 3's comparison).
    Exhaustive,
}

/// Order in which `FindNextStatToBuild` walks the plan — the §4.2 heuristic
/// and two ablation baselines (the Figure 4 `--ablation` mode compares them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NextStatOrder {
    /// The paper's heuristic: most expensive operator first, by own cost
    /// (subtree − children).
    #[default]
    MostExpensiveNode,
    /// Plan order (pre-order traversal) — ignores costs entirely.
    Syntactic,
    /// Cheapest operator first — the adversarial baseline.
    CheapestNode,
}

/// MNSA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MnsaConfig {
    /// t-Optimizer-Cost threshold in percent (paper: 20%).
    pub t_percent: f64,
    /// The ε of the sensitivity probe (paper: 0.0005). MNSA guarantees an
    /// essential set only when real predicate selectivities lie within
    /// [ε, 1−ε].
    pub epsilon: f64,
    pub candidate_mode: CandidateMode,
    /// Candidates on tables with at most this many rows are created outright
    /// without analysis — "creating candidate statistics on small tables is
    /// inexpensive" (§4.3).
    pub small_table_rows: usize,
    /// Enable MNSA/D drop detection (§5.1).
    pub drop_detection: bool,
    /// Cap on subset size for exhaustive candidate enumeration.
    pub exhaustive_max_group: usize,
    /// Skip candidates dampened by the aging registry (§6); `None` disables
    /// aging checks.
    pub aging: Option<AgingPolicy>,
    /// Node-ranking order used by `FindNextStatToBuild` (ablation knob).
    pub next_stat_order: NextStatOrder,
}

impl Default for MnsaConfig {
    fn default() -> Self {
        MnsaConfig {
            t_percent: 20.0,
            epsilon: 0.0005,
            candidate_mode: CandidateMode::Heuristic,
            small_table_rows: 0,
            drop_detection: false,
            exhaustive_max_group: 8,
            aging: None,
            next_stat_order: NextStatOrder::MostExpensiveNode,
        }
    }
}

impl MnsaConfig {
    /// MNSA/D: MNSA with drop detection enabled.
    pub fn with_drop_detection(mut self) -> Self {
        self.drop_detection = true;
        self
    }
}

/// Why MNSA stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// `P_low` and `P_high` became t-Optimizer-Cost equivalent — the
    /// existing statistics include an essential set.
    CostConverged,
    /// No candidate statistics remain to build.
    NoMoreCandidates,
}

/// What one MNSA run did for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct MnsaOutcome {
    /// Statistics created (in creation order), including small-table
    /// pre-creations and both members of join pairs.
    pub created: Vec<StatId>,
    /// Statistics moved to the drop-list by MNSA/D.
    pub drop_listed: Vec<StatId>,
    /// Candidates never built because the sensitivity test passed first.
    pub skipped: Vec<StatDescriptor>,
    /// Candidates skipped due to aging.
    pub aged_out: Vec<StatDescriptor>,
    pub optimizer_calls: usize,
    pub terminated_by: Termination,
    /// Sensitivity-probe iterations that went on to build statistics.
    pub rounds: usize,
    /// Estimated plan cost under the final statistics when MNSA stopped.
    pub final_cost: f64,
}

impl MnsaOutcome {
    fn new() -> Self {
        MnsaOutcome {
            created: Vec::new(),
            drop_listed: Vec::new(),
            skipped: Vec::new(),
            aged_out: Vec::new(),
            optimizer_calls: 0,
            terminated_by: Termination::CostConverged,
            rounds: 0,
            final_cost: 0.0,
        }
    }
}

/// The MNSA engine: wraps an optimizer and applies Figure 1.
#[derive(Debug, Clone, Default)]
pub struct MnsaEngine {
    pub optimizer: Optimizer,
    pub config: MnsaConfig,
    /// Optional memoized-optimizer cache. MNSA's call pattern is extremely
    /// repetitive (the same query is re-optimized after every creation, and
    /// tuning tools replay whole call sequences), so a shared cache removes
    /// most of the dynamic-programming work without changing any answer —
    /// cache keys fingerprint every optimizer input, so a hit is bit-identical
    /// to a fresh optimization. `optimizer_calls` still counts every logical
    /// call: the paper's call-count economics are a property of the
    /// algorithm, not of this memoization.
    pub cache: Option<Arc<OptimizeCache>>,
    /// Observability context. Disabled by default; purely observational —
    /// enabling it may never change an outcome (`tests/trace_determinism.rs`
    /// enforces bit-identical results with tracing on vs off).
    pub obs: obsv::Obs,
    /// Optional execution-feedback source. When attached, single-column
    /// candidates whose (table, column) already has enough digested
    /// observations are synthesized from feedback at near-zero build cost —
    /// both up front (like §4.3's small-table pre-creation: a statistic
    /// that costs almost nothing needs no sensitivity test to justify) and
    /// inside each build round, where the cheap path is weighed first and a
    /// scan build is the fallback. `None` (default) leaves every trajectory
    /// bit-identical to an engine without this field.
    pub feedback: Option<FeedbackSource>,
}

/// A shared store of digested executor feedback plus the corrector knobs —
/// the handle [`MnsaEngine`] and the lifecycle daemon pass around.
#[derive(Debug, Clone, Default)]
pub struct FeedbackSource {
    pub store: Arc<Mutex<FeedbackStore>>,
    pub config: FeedbackConfig,
}

impl MnsaEngine {
    pub fn new(config: MnsaConfig) -> Self {
        MnsaEngine {
            optimizer: Optimizer::default(),
            config,
            cache: None,
            obs: obsv::Obs::disabled(),
            feedback: None,
        }
    }

    /// Route this engine's optimizer calls through `cache`.
    pub fn with_cache(mut self, cache: Arc<OptimizeCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Weigh near-zero-cost feedback synthesis against scan builds.
    pub fn with_feedback(mut self, feedback: FeedbackSource) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Record spans and counters into `obs` while tuning.
    pub fn with_obs(mut self, obs: obsv::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The candidate set for a query under the configured mode.
    pub fn candidates(&self, query: &BoundSelect) -> Vec<StatDescriptor> {
        match self.config.candidate_mode {
            CandidateMode::Heuristic => candidate_statistics(query),
            CandidateMode::SingleColumnOnly => single_column_candidates(query),
            CandidateMode::Exhaustive => {
                exhaustive_candidates(query, self.config.exhaustive_max_group)
            }
        }
    }

    /// One logical optimizer call, counted in `outcome` and on the
    /// `mnsa.optimizer_calls` counter, recorded as an `optimizer.call` child
    /// span (phase label, resulting cost, cache-hit attribution).
    #[allow(clippy::too_many_arguments)]
    fn optimize(
        &self,
        db: &Database,
        catalog: &StatsCatalog,
        query: &BoundSelect,
        options: &OptimizeOptions,
        outcome: &mut MnsaOutcome,
        parent: &obsv::SpanGuard,
        calls: &obsv::Counter,
        phase: &'static str,
    ) -> Result<OptimizedQuery, PlanError> {
        outcome.optimizer_calls += 1;
        calls.inc();
        let mut span = parent.child("optimizer.call");
        // Cache-hit attribution reads the shared hit counter around the call;
        // only bother when the span is live.
        let hits_before = match &self.cache {
            Some(cache) if span.is_enabled() => Some(cache.hits()),
            _ => None,
        };
        let result = match &self.cache {
            Some(cache) => {
                self.optimizer
                    .optimize_cached(db, query, catalog.full_view(), options, cache)
            }
            None => self
                .optimizer
                .optimize(db, query, catalog.full_view(), options),
        };
        if span.is_enabled() {
            span.arg("phase", phase);
            if let (Some(before), Some(cache)) = (hits_before, &self.cache) {
                span.arg("cache_hit", cache.hits() > before);
            }
            if let Ok(optimized) = &result {
                span.arg("cost", optimized.cost);
            }
        }
        result
    }

    /// Build one round group, weighing the near-zero-cost feedback
    /// synthesis against a scan build per descriptor. Without a feedback
    /// source this is exactly the grouped shared-scan path.
    fn build_group(
        &self,
        catalog: &mut StatsCatalog,
        db: &Database,
        group: &[StatDescriptor],
    ) -> Result<Vec<StatId>, TuneError> {
        let Some(feedback) = &self.feedback else {
            return Ok(crate::batch::create_statistics_grouped(catalog, db, group)?);
        };
        let mut store = feedback.store.lock();
        let mut ids = Vec::with_capacity(group.len());
        for d in group {
            let id = match catalog.create_statistic_from_feedback(
                db,
                d.clone(),
                &mut store,
                &feedback.config,
            )? {
                Some(id) => id,
                None => catalog.create_statistic(db, d.clone())?,
            };
            ids.push(id);
        }
        Ok(ids)
    }

    /// Run MNSA (Figure 1) for one query, creating statistics in `catalog`.
    pub fn run_query(
        &self,
        db: &Database,
        catalog: &mut StatsCatalog,
        query: &BoundSelect,
    ) -> Result<MnsaOutcome, TuneError> {
        let mut outcome = MnsaOutcome::new();
        let mut query_span = self.obs.tracer.span("mnsa.query");
        query_span.arg("relations", query.relations.len());
        // One registry lookup per run, not per optimizer call.
        let calls = self.obs.metrics.counter("mnsa.optimizer_calls");
        // A drop-listed statistic is invisible to the optimizer, so for
        // candidate purposes it counts as unbuilt: if this query's
        // sensitivity loop picks it again, `create_statistic` reactivates it
        // from the drop-list for free (§5). Candidates whose table vanished
        // under us (a concurrent drop) are not tunable and are filtered out.
        let mut remaining: Vec<StatDescriptor> = self
            .candidates(query)
            .into_iter()
            .filter(|d| catalog.find_active(d).is_none())
            .filter(|d| db.try_table(d.table).is_ok())
            .collect();

        // Small-table pre-creation (§4.3). Same-table runs share one scan.
        if self.config.small_table_rows > 0 {
            let mut small = Vec::new();
            let mut rest = Vec::with_capacity(remaining.len());
            for d in remaining {
                let rows = db.try_table(d.table).map(|t| t.row_count())?;
                if rows <= self.config.small_table_rows {
                    small.push(d);
                } else {
                    rest.push(d);
                }
            }
            outcome
                .created
                .extend(crate::batch::create_statistics_grouped(
                    catalog, db, &small,
                )?);
            remaining = rest;
        }

        // Feedback pre-creation: a candidate whose (table, column) already
        // has enough digested observations costs almost nothing to build —
        // like a small table, it needs no sensitivity round to justify.
        if let Some(feedback) = &self.feedback {
            let mut store = feedback.store.lock();
            let mut rest = Vec::with_capacity(remaining.len());
            for d in remaining {
                match catalog.create_statistic_from_feedback(
                    db,
                    d.clone(),
                    &mut store,
                    &feedback.config,
                )? {
                    Some(id) => outcome.created.push(id),
                    None => rest.push(d),
                }
            }
            remaining = rest;
        }

        // Step 2: P = plan of Q with default magic numbers.
        let mut current = self.optimize(
            db,
            catalog,
            query,
            &OptimizeOptions::default(),
            &mut outcome,
            &query_span,
            &calls,
            "initial",
        )?;

        loop {
            // Step 4: the selectivity variables still on magic numbers.
            let magic: Vec<PredicateId> = current.magic_variables.clone();

            // Steps 5–7: P_low / P_high sensitivity probe.
            if magic.is_empty() {
                outcome.terminated_by = Termination::CostConverged;
                break;
            }
            let mut round_span = query_span.child("mnsa.round");
            round_span.arg("magic_vars", magic.len());
            let p_low = self.optimize(
                db,
                catalog,
                query,
                &OptimizeOptions::inject_all(&magic, self.config.epsilon),
                &mut outcome,
                &round_span,
                &calls,
                "probe_low",
            )?;
            let p_high = self.optimize(
                db,
                catalog,
                query,
                &OptimizeOptions::inject_all(&magic, 1.0 - self.config.epsilon),
                &mut outcome,
                &round_span,
                &calls,
                "probe_high",
            )?;
            let lo = p_low.cost.min(p_high.cost);
            let hi = p_low.cost.max(p_high.cost);
            round_span.arg("p_low_cost", lo);
            round_span.arg("p_high_cost", hi);
            if lo <= 0.0 || (hi - lo) / lo <= self.config.t_percent / 100.0 {
                round_span.arg("converged", true);
                outcome.terminated_by = Termination::CostConverged;
                break;
            }

            // Step 8: FindNextStatToBuild on the magic-number plan P.
            let Some(group) = self.find_next_stats(
                db,
                catalog,
                query,
                &current.plan,
                &mut remaining,
                &mut outcome,
                &round_span,
            ) else {
                round_span.arg("converged", false);
                outcome.terminated_by = Termination::NoMoreCandidates;
                break;
            };

            // Step 10: build the statistic(s). A round group may pair
            // statistics across two joined tables; same-table runs inside it
            // share one scan.
            let before_plan = current.plan.clone();
            let round_ids: Vec<StatId> = self.build_group(catalog, db, &group)?;
            outcome.created.extend(&round_ids);
            outcome.rounds += 1;
            round_span.arg("built", round_ids.len());

            // Steps 11–12: re-optimize with the new statistics.
            current = self.optimize(
                db,
                catalog,
                query,
                &OptimizeOptions::default(),
                &mut outcome,
                &round_span,
                &calls,
                "rebuild",
            )?;
            round_span.arg("new_cost", current.cost);

            // MNSA/D (§5.1): if the plan did not change, the statistics just
            // built are heuristically non-essential. The heuristic alone can
            // misfire when the new statistics interact with earlier ones
            // (dropping them would change the plan even though adding them
            // did not), so the drop is verified: hide the statistics,
            // re-optimize, and keep the drop only if the plan tree is still
            // unchanged.
            if self.config.drop_detection && current.plan.same_tree(&before_plan) {
                if round_span.is_enabled() {
                    round_span.instant(
                        "mnsad.drop_probe",
                        vec![("n", obsv::ArgValue::Int(round_ids.len() as i64))],
                    );
                }
                for &id in &round_ids {
                    catalog.move_to_drop_list(id);
                }
                let without = self.optimize(
                    db,
                    catalog,
                    query,
                    &OptimizeOptions::default(),
                    &mut outcome,
                    &round_span,
                    &calls,
                    "drop_verify",
                )?;
                if without.plan.same_tree(&current.plan) {
                    if round_span.is_enabled() {
                        round_span.instant("mnsad.dropped", Vec::new());
                    }
                    outcome.drop_listed.extend(&round_ids);
                    // The loop invariant (current == plan under active stats)
                    // holds with the re-optimized plan.
                    current = without;
                } else {
                    if round_span.is_enabled() {
                        round_span.instant("mnsad.reactivated", Vec::new());
                    }
                    self.obs.metrics.counter("mnsa.drop_reactivated").inc();
                    for &id in &round_ids {
                        catalog.reactivate(id);
                    }
                }
            }
        }

        outcome.skipped = remaining;
        outcome.final_cost = current.cost;
        if query_span.is_enabled() {
            query_span.arg("optimizer_calls", outcome.optimizer_calls);
            query_span.arg("rounds", outcome.rounds);
            query_span.arg("created", outcome.created.len());
            query_span.arg("drop_listed", outcome.drop_listed.len());
            query_span.arg("skipped", outcome.skipped.len());
            query_span.arg("final_cost", outcome.final_cost);
            query_span.arg(
                "terminated_by",
                match outcome.terminated_by {
                    Termination::CostConverged => "converged",
                    Termination::NoMoreCandidates => "no_more_candidates",
                },
            );
        }
        self.obs.metrics.counter("mnsa.queries").inc();
        self.obs
            .metrics
            .counter("mnsa.rounds")
            .add(outcome.rounds as u64);
        self.obs
            .metrics
            .counter("mnsa.stats_created")
            .add(outcome.created.len() as u64);
        self.obs
            .metrics
            .counter("mnsa.stats_drop_listed")
            .add(outcome.drop_listed.len() as u64);
        Ok(outcome)
    }

    /// §4.2: rank plan operators by own cost (subtree − children) and return
    /// the unbuilt candidate statistics relevant to the most expensive
    /// operator that has any — as a group, so join statistics come in pairs.
    #[allow(clippy::too_many_arguments)]
    fn find_next_stats(
        &self,
        db: &Database,
        catalog: &StatsCatalog,
        query: &BoundSelect,
        plan: &PlanNode,
        remaining: &mut Vec<StatDescriptor>,
        outcome: &mut MnsaOutcome,
        span: &obsv::SpanGuard,
    ) -> Option<Vec<StatDescriptor>> {
        let mut nodes = plan.nodes();
        match self.config.next_stat_order {
            NextStatOrder::MostExpensiveNode => {
                nodes.sort_by(|a, b| b.own_cost().total_cmp(&a.own_cost()))
            }
            NextStatOrder::Syntactic => {} // pre-order as returned by nodes()
            NextStatOrder::CheapestNode => {
                nodes.sort_by(|a, b| a.own_cost().total_cmp(&b.own_cost()))
            }
        }

        for node in nodes {
            let group = self.stats_for_node(query, node, remaining);
            if group.is_empty() {
                continue;
            }
            // Aging (§6): dampen re-creation of recently dropped statistics.
            let mut usable = Vec::with_capacity(group.len());
            for d in group {
                let aged = self
                    .config
                    .aging
                    .map(|policy| catalog.is_aged_out(&d, &policy, plan.est_cost))
                    .unwrap_or(false);
                let _ = db;
                if aged {
                    remaining.retain(|r| r != &d);
                    outcome.aged_out.push(d);
                } else {
                    usable.push(d);
                }
            }
            if usable.is_empty() {
                continue;
            }
            for d in &usable {
                remaining.retain(|r| r != d);
            }
            // The chosen statistic and why: the ranked operator's own cost is
            // the §4.2 selection criterion.
            if let (true, Some(first)) = (span.is_enabled(), usable.first()) {
                span.instant(
                    "mnsa.next_stat",
                    vec![
                        ("op_own_cost", obsv::ArgValue::Float(node.own_cost())),
                        ("group_size", obsv::ArgValue::Int(usable.len() as i64)),
                        ("table", obsv::ArgValue::Int(first.table.0 as i64)),
                        ("columns", obsv::ArgValue::Int(first.columns.len() as i64)),
                    ],
                );
            }
            return Some(usable);
        }
        None
    }

    /// The unbuilt candidates relevant to one plan node.
    fn stats_for_node(
        &self,
        query: &BoundSelect,
        node: &PlanNode,
        remaining: &[StatDescriptor],
    ) -> Vec<StatDescriptor> {
        match &node.op {
            Operator::SeqScan { rel, preds, .. }
            | Operator::IndexScan {
                rel,
                seek_preds: preds,
                ..
            } => {
                let Some(&(table, _)) = query.relations.get(*rel) else {
                    return Vec::new();
                };
                let pred_cols: Vec<usize> = preds
                    .iter()
                    .chain(match &node.op {
                        Operator::IndexScan { residual, .. } => residual.iter(),
                        _ => [].iter(),
                    })
                    .filter_map(|&i| query.selections.get(i).map(|s| s.column.column))
                    .collect();
                // First matching candidate (candidate order: singles first).
                remaining
                    .iter()
                    .find(|d| d.table == table && d.columns.iter().all(|c| pred_cols.contains(c)))
                    .cloned()
                    .into_iter()
                    .collect()
            }
            Operator::HashJoin { edges }
            | Operator::MergeJoin { edges }
            | Operator::NestedLoopJoin { edges }
            | Operator::IndexNLJoin { edges, .. } => {
                // Join statistics come in pairs: propose the matching
                // candidate on each side of the first edge with any unbuilt.
                for &e in edges {
                    let Some(edge) = query.join_edges.get(e) else {
                        continue;
                    };
                    let (Some(&(lt, _)), Some(&(rt, _))) = (
                        query.relations.get(edge.left_rel),
                        query.relations.get(edge.right_rel),
                    ) else {
                        continue;
                    };
                    let lcols: Vec<usize> = edge.pairs.iter().map(|&(l, _)| l).collect();
                    let rcols: Vec<usize> = edge.pairs.iter().map(|&(_, r)| r).collect();
                    let matches = |d: &&StatDescriptor, t: storage::TableId, cols: &[usize]| {
                        d.table == t
                            && d.columns.len() == cols.len()
                            && d.columns.iter().all(|c| cols.contains(c))
                    };
                    let left = remaining.iter().find(|d| matches(d, lt, &lcols)).cloned();
                    let right = remaining.iter().find(|d| matches(d, rt, &rcols)).cloned();
                    let group: Vec<StatDescriptor> = left.into_iter().chain(right).collect();
                    if !group.is_empty() {
                        return group;
                    }
                }
                Vec::new()
            }
            // Footnote 1 of the paper: ORDER BY columns are not relevant —
            // no statistics are proposed for a sort node.
            Operator::Sort { .. } => Vec::new(),
            Operator::HashAggregate { group } => {
                let cols: Vec<(storage::TableId, usize)> = group
                    .iter()
                    .filter_map(|g| query.relations.get(g.relation).map(|&(t, _)| (t, g.column)))
                    .collect();
                remaining
                    .iter()
                    .find(|d| d.columns.iter().all(|c| cols.contains(&(d.table, *c))))
                    .cloned()
                    .into_iter()
                    .collect()
            }
        }
    }

    /// Run MNSA over a whole workload (§4.3: "a sufficient set of statistics
    /// for a workload can be obtained by invoking MNSA for each query").
    pub fn run_workload(
        &self,
        db: &Database,
        catalog: &mut StatsCatalog,
        queries: &[BoundSelect],
    ) -> Result<Vec<MnsaOutcome>, TuneError> {
        queries
            .iter()
            .map(|q| self.run_query(db, catalog, q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::{bind_statement, parse_statement, BoundStatement};
    use storage::{ColumnDef, DataType, Schema, Value};

    /// employees(age skewed, salary skewed) + departments, Example 2 style.
    fn setup() -> Database {
        let mut db = Database::new();
        let emp = db
            .create_table(
                "employees",
                Schema::new(vec![
                    ColumnDef::new("empid", DataType::Int),
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("age", DataType::Int),
                    ColumnDef::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        let dept = db
            .create_table(
                "departments",
                Schema::new(vec![
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..3000i64 {
            // salary > 200 is rare (~1%), age < 30 is common (~60%).
            let salary = if i % 100 == 0 { 250 } else { i % 200 };
            let age = 20 + (i % 50);
            db.table_mut(emp)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 20),
                    Value::Int(age),
                    Value::Int(salary),
                ])
                .unwrap();
        }
        for d in 0..20i64 {
            db.table_mut(dept)
                .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
                .unwrap();
        }
        db
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!(),
        }
    }

    const EXAMPLE2_SQL: &str = "SELECT e.empid, d.dname FROM employees e, departments d \
        WHERE e.deptid = d.deptid AND e.age < 30 AND e.salary > 200";

    #[test]
    fn mnsa_builds_fewer_than_all_candidates() {
        let db = setup();
        let q = bind(&db, EXAMPLE2_SQL);
        let engine = MnsaEngine::new(MnsaConfig::default());
        let all = engine.candidates(&q).len();
        let mut catalog = StatsCatalog::new();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
        assert!(
            outcome.created.len() < all,
            "MNSA built all {all} candidates — no pruning happened"
        );
        assert!(
            !outcome.skipped.is_empty() || outcome.terminated_by == Termination::NoMoreCandidates
        );
    }

    #[test]
    fn mnsa_converges_and_reports_three_calls_per_round() {
        let db = setup();
        let q = bind(&db, EXAMPLE2_SQL);
        let engine = MnsaEngine::new(MnsaConfig::default());
        let mut catalog = StatsCatalog::new();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
        // Figure 1: 1 initial call + 2 probe calls per round + 1 re-optimize
        // per creation round.
        assert!(outcome.optimizer_calls >= 3);
        assert_eq!(outcome.terminated_by, Termination::CostConverged);
    }

    #[test]
    fn feedback_source_synthesizes_candidates_at_near_zero_cost() {
        let db = setup();
        let emp = db.table_id("employees").unwrap();
        let q = bind(&db, EXAMPLE2_SQL);

        // Prime the store with observations on employees.salary (column 3):
        // the rare salary > 200 scans the executor would have reported.
        let source = FeedbackSource::default();
        {
            let mut store = source.store.lock();
            let records: Vec<obsv::FeedbackRecord> = (0..8)
                .map(|i| obsv::FeedbackRecord {
                    fingerprint: obsv::template_fingerprint(emp.0 as u64, 3, 2),
                    table: emp.0 as u64,
                    column: 3,
                    lo: 200.0 + i as f64,
                    hi: 260.0,
                    est_rows: 999.0,
                    rows_out: 30.0,
                    input_rows: 3000.0,
                })
                .collect();
            store.ingest(&records);
        }

        let engine = MnsaEngine::new(MnsaConfig::default()).with_feedback(source.clone());
        let mut catalog = StatsCatalog::new();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();

        // The salary statistic came from feedback: built, near-free, and
        // its observations were consumed.
        let salary = catalog
            .find_built(&StatDescriptor::single(emp, 3))
            .expect("salary statistic exists");
        let s = catalog.statistic(salary).unwrap();
        assert!(
            s.build_cost < 100.0,
            "feedback synthesis must be near-free, cost {}",
            s.build_cost
        );
        assert_eq!(source.store.lock().count(emp.0 as u64, 3), 0);
        assert!(outcome.created.contains(&salary));
        // Scan-built statistics on the same run cost orders of magnitude
        // more, which is exactly the weighing FindNextStatToBuild exploits.
        let scan_cost_floor = catalog
            .statistic(salary)
            .map(|_| {
                catalog
                    .snapshot()
                    .stats
                    .iter()
                    .filter(|st| st.id != salary)
                    .map(|st| st.build_cost)
                    .fold(f64::INFINITY, f64::min)
            })
            .unwrap();
        if scan_cost_floor.is_finite() {
            assert!(s.build_cost < scan_cost_floor / 10.0);
        }
    }

    /// `feedback: None` (the default) leaves the tuning trajectory
    /// bit-identical to an engine predating the field.
    #[test]
    fn engine_without_feedback_is_unchanged_by_empty_source() {
        let db = setup();
        let q = bind(&db, EXAMPLE2_SQL);
        let mut plain_catalog = StatsCatalog::new();
        let plain = MnsaEngine::new(MnsaConfig::default())
            .run_query(&db, &mut plain_catalog, &q)
            .unwrap();
        // An attached but empty source must also change nothing.
        let mut empty_catalog = StatsCatalog::new();
        let empty = MnsaEngine::new(MnsaConfig::default())
            .with_feedback(FeedbackSource::default())
            .run_query(&db, &mut empty_catalog, &q)
            .unwrap();
        assert_eq!(plain, empty);
        assert_eq!(plain_catalog.snapshot(), empty_catalog.snapshot());
    }

    #[test]
    fn mnsa_noop_when_no_candidates() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM departments");
        let engine = MnsaEngine::new(MnsaConfig::default());
        let mut catalog = StatsCatalog::new();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
        assert!(outcome.created.is_empty());
        assert_eq!(catalog.active_count(), 0);
    }

    #[test]
    fn mnsa_skips_everything_when_insensitive() {
        // A predicate on a one-row table: plan cost barely moves between
        // P_low and P_high, so MNSA should create nothing.
        let mut db = Database::new();
        let t = db
            .create_table(
                "tiny",
                Schema::new(vec![ColumnDef::new("a", DataType::Int)]),
            )
            .unwrap();
        db.table_mut(t).insert(vec![Value::Int(1)]).unwrap();
        let q = bind(&db, "SELECT * FROM tiny WHERE a = 1");
        let engine = MnsaEngine::new(MnsaConfig::default());
        let mut catalog = StatsCatalog::new();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
        assert_eq!(outcome.terminated_by, Termination::CostConverged);
        assert!(outcome.created.is_empty());
        assert_eq!(outcome.skipped.len(), 1);
    }

    #[test]
    fn small_table_pre_creation() {
        let db = setup();
        let q = bind(&db, EXAMPLE2_SQL);
        let engine = MnsaEngine::new(MnsaConfig {
            small_table_rows: 100, // departments (20 rows) qualifies
            ..Default::default()
        });
        let mut catalog = StatsCatalog::new();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
        let dept = db.table_id("departments").unwrap();
        let dept_stats: Vec<_> = catalog.active_on_table(dept).collect();
        assert!(!dept_stats.is_empty(), "small-table stats created outright");
        assert!(!outcome.created.is_empty());
    }

    #[test]
    fn join_statistics_created_in_pairs() {
        let mut db = Database::new();
        // Two mid-size tables joined on a column; no selection predicates, so
        // the join edge is the only magic variable and the join node the most
        // expensive operator.
        for name in ["r1", "r2"] {
            let t = db
                .create_table(
                    name,
                    Schema::new(vec![
                        ColumnDef::new("k", DataType::Int),
                        ColumnDef::new("v", DataType::Int),
                    ]),
                )
                .unwrap();
            for i in 0..2000i64 {
                db.table_mut(t)
                    .insert(vec![Value::Int(i % 100), Value::Int(i)])
                    .unwrap();
            }
        }
        let q = bind(&db, "SELECT * FROM r1, r2 WHERE r1.k = r2.k");
        let engine = MnsaEngine::new(MnsaConfig::default());
        let mut catalog = StatsCatalog::new();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
        if !outcome.created.is_empty() {
            assert_eq!(outcome.created.len(), 2, "join stats must come in pairs");
            let tables: Vec<_> = outcome
                .created
                .iter()
                .map(|&id| catalog.statistic(id).unwrap().descriptor.table)
                .collect();
            assert_ne!(tables[0], tables[1]);
        }
    }

    #[test]
    fn mnsad_drop_lists_useless_statistics() {
        let db = setup();
        // age < 90 is always true: its statistic will not change the plan.
        let q = bind(
            &db,
            "SELECT e.empid FROM employees e, departments d \
             WHERE e.deptid = d.deptid AND e.age < 90 AND e.salary > 200",
        );
        let engine = MnsaEngine::new(MnsaConfig::default().with_drop_detection());
        let mut catalog = StatsCatalog::new();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
        // MNSA/D may or may not fire depending on creation order, but every
        // drop-listed statistic must actually be on the catalog's drop-list.
        for id in &outcome.drop_listed {
            assert!(catalog.is_drop_listed(*id));
        }
        assert!(outcome.created.len() >= outcome.drop_listed.len());
    }

    #[test]
    fn aging_suppresses_recreation() {
        let db = setup();
        let q = bind(&db, EXAMPLE2_SQL);
        let aging = AgingPolicy {
            window_epochs: 10,
            expensive_query_cost: f64::INFINITY,
        };
        // First run creates statistics; physically drop them all.
        let engine = MnsaEngine::new(MnsaConfig::default());
        let mut catalog = StatsCatalog::new();
        let first = engine.run_query(&db, &mut catalog, &q).unwrap();
        assert!(!first.created.is_empty());
        for id in first.created.clone() {
            catalog.physically_drop(id);
        }
        // Second run with aging: the dropped statistics are dampened.
        let engine2 = MnsaEngine::new(MnsaConfig {
            aging: Some(aging),
            ..Default::default()
        });
        let second = engine2.run_query(&db, &mut catalog, &q).unwrap();
        assert!(
            !second.aged_out.is_empty(),
            "aging should have suppressed at least one re-creation"
        );
        assert!(second.created.len() < first.created.len() + 1);
    }

    #[test]
    fn workload_runner_shares_catalog() {
        let db = setup();
        let q1 = bind(&db, EXAMPLE2_SQL);
        let q2 = bind(&db, EXAMPLE2_SQL);
        let engine = MnsaEngine::new(MnsaConfig::default());
        let mut catalog = StatsCatalog::new();
        let outcomes = engine.run_workload(&db, &mut catalog, &[q1, q2]).unwrap();
        assert_eq!(outcomes.len(), 2);
        // The second identical query must not rebuild anything.
        assert!(outcomes[1].created.is_empty());
        assert!(outcomes[1].optimizer_calls <= 3);
    }

    #[test]
    fn exhaustive_mode_builds_more() {
        let db = setup();
        let q = bind(&db, EXAMPLE2_SQL);
        let h = MnsaEngine::new(MnsaConfig::default());
        let e = MnsaEngine::new(MnsaConfig {
            candidate_mode: CandidateMode::Exhaustive,
            ..Default::default()
        });
        assert!(e.candidates(&q).len() >= h.candidates(&q).len());
    }
}
