//! Tuning-level errors.
//!
//! Every §4–§6 algorithm (MNSA, MNSA/D, Shrinking Set, the policy layer)
//! returns [`TuneError`] instead of panicking, so a degenerate input — an
//! empty table, a statistic dropped mid-tune, a malformed query — surfaces
//! as a typed, recoverable failure at the tuning loop's caller.

use executor::ExecError;
use optimizer::PlanError;
use stats::StatsError;
use std::fmt;
use storage::StorageError;

/// Errors raised by the statistics-tuning algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// Statistics creation or catalog manipulation failed.
    Stats(StatsError),
    /// An optimizer call inside the tuning loop failed.
    Plan(PlanError),
    /// Executing a statement during tuning failed.
    Exec(ExecError),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Stats(e) => write!(f, "statistics error during tuning: {e}"),
            TuneError::Plan(e) => write!(f, "optimizer error during tuning: {e}"),
            TuneError::Exec(e) => write!(f, "execution error during tuning: {e}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Stats(e) => Some(e),
            TuneError::Plan(e) => Some(e),
            TuneError::Exec(e) => Some(e),
        }
    }
}

impl From<StatsError> for TuneError {
    fn from(e: StatsError) -> Self {
        TuneError::Stats(e)
    }
}

impl From<PlanError> for TuneError {
    fn from(e: PlanError) -> Self {
        TuneError::Plan(e)
    }
}

impl From<ExecError> for TuneError {
    fn from(e: ExecError) -> Self {
        TuneError::Exec(e)
    }
}

impl From<StorageError> for TuneError {
    fn from(e: StorageError) -> Self {
        TuneError::Stats(StatsError::Storage(e))
    }
}
