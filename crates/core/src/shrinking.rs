//! The Shrinking Set algorithm (§5.2, Figure 2).
//!
//! Given a workload and an initial statistics set S known to contain an
//! essential set (e.g. the output of vanilla MNSA), Shrinking Set removes
//! every statistic whose absence leaves the plan of *each* query for which
//! it is potentially relevant unchanged. Unlike MNSA/D it **guarantees** the
//! result is an essential set: after one pass, removing any remaining
//! statistic would change some plan.
//!
//! Worst-case optimizer calls per pass: `|S| * |W|` (plus `|W|` to record
//! the reference plans); the pass repeats until it removes nothing, which
//! rarely takes more than two rounds. An efficiency refinement from §5.2 is
//! implemented:
//! queries whose plan is already insensitive to a statistic's table are
//! filtered by the relevance test before any optimizer call is spent.

use crate::equivalence::Equivalence;
use optimizer::{OptimizeOptions, OptimizedQuery, Optimizer, PlanError};
use query::BoundSelect;
use stats::{StatId, StatsCatalog};
use std::collections::HashSet;
use storage::Database;

/// The result of a Shrinking Set pass.
#[derive(Debug, Clone)]
pub struct ShrinkingOutcome {
    /// The essential set R ⊆ S that survived.
    pub essential: Vec<StatId>,
    /// Statistics removed (moved to the drop-list when `apply` was set).
    pub removed: Vec<StatId>,
    pub optimizer_calls: usize,
}

/// Is statistic `stat` potentially relevant to query `q`? (Figure 2 only
/// re-optimizes queries passing this test.) A statistic is potentially
/// relevant when its table is referenced and at least one of its columns is
/// among the query's relevant columns.
fn potentially_relevant(catalog: &StatsCatalog, stat: StatId, q: &BoundSelect) -> bool {
    let Some(s) = catalog.statistic(stat) else {
        return false;
    };
    if !q.references_table(s.descriptor.table) {
        return false;
    }
    let relevant = q.relevant_columns();
    s.descriptor
        .columns
        .iter()
        .any(|&c| relevant.contains(&(s.descriptor.table, c)))
}

/// Run Shrinking-Set(W, S) per Figure 2.
///
/// `initial` is S; statistics of the catalog outside `initial` are ignored
/// throughout (they are neither tested nor visible — the algorithm reasons
/// about S only). When `apply` is true, removed statistics are moved to the
/// catalog's drop-list.
pub fn shrinking_set(
    db: &Database,
    catalog: &mut StatsCatalog,
    optimizer: &Optimizer,
    workload: &[BoundSelect],
    initial: &[StatId],
    equivalence: Equivalence,
    apply: bool,
) -> Result<ShrinkingOutcome, PlanError> {
    shrinking_set_traced(
        db,
        catalog,
        optimizer,
        workload,
        initial,
        equivalence,
        apply,
        &obsv::Obs::disabled(),
    )
}

/// [`shrinking_set`] under an observability context: a `shrink.run` span with
/// one `shrink.pass` child per fixed-point pass, and `shrink.*` counters.
/// Purely observational — the outcome is bit-identical to the untraced call.
#[allow(clippy::too_many_arguments)]
pub fn shrinking_set_traced(
    db: &Database,
    catalog: &mut StatsCatalog,
    optimizer: &Optimizer,
    workload: &[BoundSelect],
    initial: &[StatId],
    equivalence: Equivalence,
    apply: bool,
    obs: &obsv::Obs,
) -> Result<ShrinkingOutcome, PlanError> {
    let mut run_span = obs.tracer.span("shrink.run");
    run_span.arg("initial", initial.len());
    run_span.arg("queries", workload.len());
    let all_active: HashSet<StatId> = catalog.active_ids().into_iter().collect();
    let initial_set: HashSet<StatId> = initial.iter().copied().collect();
    // Statistics outside S stay hidden for every optimization in this pass.
    let base_ignore: HashSet<StatId> = all_active.difference(&initial_set).copied().collect();

    // A Cell so the per-pass spans can read the running count while the
    // closure below still holds its borrow.
    let calls = std::cell::Cell::new(0usize);
    let optimize = |catalog: &StatsCatalog,
                    q: &BoundSelect,
                    ignore: &HashSet<StatId>|
     -> Result<OptimizedQuery, PlanError> {
        calls.set(calls.get() + 1);
        optimizer.optimize(db, q, catalog.view(ignore), &OptimizeOptions::default())
    };

    // Reference plans: Plan(Q, S).
    let reference: Vec<OptimizedQuery> = workload
        .iter()
        .map(|q| optimize(catalog, q, &base_ignore))
        .collect::<Result<_, _>>()?;

    let mut r: Vec<StatId> = initial.to_vec();
    let mut removed: Vec<StatId> = Vec::new();

    // Figure 2 is a single pass; we iterate it to a fixed point. A statistic
    // kept early in the pass can become removable after later removals when
    // plan dependence on statistics is non-monotone, and the essential-set
    // guarantee ("removing any remaining statistic breaks equivalence")
    // only holds once a full pass removes nothing.
    loop {
        let mut pass_span = run_span.child("shrink.pass");
        let calls_at_pass_start = calls.get();
        let removed_at_pass_start = removed.len();
        let mut removed_this_pass = false;
        for &s in &r.clone() {
            // Trial set: R - {s} (accumulated removals stay removed —
            // Figure 2 line 5 mutates R in place).
            let mut ignore = base_ignore.clone();
            ignore.extend(removed.iter().copied());
            ignore.insert(s);

            let mut removable = true;
            for (qi, q) in workload.iter().enumerate() {
                if !potentially_relevant(catalog, s, q) {
                    continue;
                }
                let trial = optimize(catalog, q, &ignore)?;
                if !equivalence.equivalent(&trial, &reference[qi]) {
                    removable = false;
                    break;
                }
            }
            if removable {
                r.retain(|&x| x != s);
                removed.push(s);
                removed_this_pass = true;
            }
        }
        pass_span.arg("removed", removed.len() - removed_at_pass_start);
        pass_span.arg("optimizer_calls", calls.get() - calls_at_pass_start);
        if !removed_this_pass {
            break;
        }
    }

    if apply {
        for &s in &removed {
            catalog.move_to_drop_list(s);
        }
    }

    run_span.arg("essential", r.len());
    run_span.arg("removed", removed.len());
    run_span.arg("optimizer_calls", calls.get());
    obs.metrics
        .counter("shrink.optimizer_calls")
        .add(calls.get() as u64);
    obs.metrics
        .counter("shrink.removed")
        .add(removed.len() as u64);

    Ok(ShrinkingOutcome {
        essential: r,
        removed,
        optimizer_calls: calls.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnsa::{MnsaConfig, MnsaEngine};
    use query::{bind_statement, parse_statement, BoundStatement};
    use stats::StatDescriptor;
    use storage::{ColumnDef, DataType, Schema, Value};

    fn setup() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "facts",
                Schema::new(vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        let d = db
            .create_table(
                "dim",
                Schema::new(vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("label", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..2000i64 {
            let a = if i % 50 == 0 { 1 } else { 0 }; // a = 1 is rare
            db.table_mut(t)
                .insert(vec![Value::Int(i % 40), Value::Int(a), Value::Int(i % 7)])
                .unwrap();
        }
        for i in 0..40i64 {
            db.table_mut(d)
                .insert(vec![Value::Int(i), Value::Str(format!("x{i}"))])
                .unwrap();
        }
        db
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!(),
        }
    }

    /// The defining property: the result is equivalent to the initial set,
    /// and removing any single remaining statistic breaks equivalence.
    #[test]
    fn result_is_an_essential_set() {
        let db = setup();
        let workload = vec![
            bind(
                &db,
                "SELECT * FROM facts, dim WHERE facts.k = dim.k AND a = 1",
            ),
            bind(&db, "SELECT b, COUNT(*) FROM facts WHERE a = 1 GROUP BY b"),
        ];
        // Start from ALL candidate statistics (a superset of essential).
        let mut catalog = StatsCatalog::new();
        let engine = MnsaEngine::new(MnsaConfig::default());
        for q in &workload {
            for d in engine.candidates(q) {
                catalog.create_statistic(&db, d).unwrap();
            }
        }
        let initial = catalog.active_ids();
        let optimizer = Optimizer::default();
        let equiv = Equivalence::ExecutionTree;
        let out = shrinking_set(
            &db,
            &mut catalog,
            &optimizer,
            &workload,
            &initial,
            equiv,
            false,
        )
        .unwrap();

        assert_eq!(out.essential.len() + out.removed.len(), initial.len());

        // (1) R is equivalent to S for every query.
        let all: HashSet<StatId> = catalog.active_ids().into_iter().collect();
        let r_set: HashSet<StatId> = out.essential.iter().copied().collect();
        let ignore_to_r: HashSet<StatId> = all.difference(&r_set).copied().collect();
        for q in &workload {
            let with_s = optimizer
                .optimize(
                    &db,
                    q,
                    catalog.view(&HashSet::new()),
                    &OptimizeOptions::default(),
                )
                .unwrap();
            let with_r = optimizer
                .optimize(
                    &db,
                    q,
                    catalog.view(&ignore_to_r),
                    &OptimizeOptions::default(),
                )
                .unwrap();
            assert!(equiv.equivalent(&with_s, &with_r), "R not equivalent to S");
        }

        // (2) minimality: removing any statistic of R changes some plan.
        for &s in &out.essential {
            let mut ignore = ignore_to_r.clone();
            ignore.insert(s);
            let mut any_changed = false;
            for q in &workload {
                let with_r = optimizer
                    .optimize(
                        &db,
                        q,
                        catalog.view(&ignore_to_r),
                        &OptimizeOptions::default(),
                    )
                    .unwrap();
                let without = optimizer
                    .optimize(&db, q, catalog.view(&ignore), &OptimizeOptions::default())
                    .unwrap();
                if !equiv.equivalent(&with_r, &without) {
                    any_changed = true;
                    break;
                }
            }
            assert!(
                any_changed,
                "statistic {s} in R is removable — R not minimal"
            );
        }
    }

    #[test]
    fn apply_moves_removed_to_drop_list() {
        let db = setup();
        let workload = vec![bind(&db, "SELECT * FROM facts WHERE a = 1 AND b = 3")];
        let mut catalog = StatsCatalog::new();
        let facts = db.table_id("facts").unwrap();
        for c in [1usize, 2] {
            catalog
                .create_statistic(&db, StatDescriptor::single(facts, c))
                .unwrap();
        }
        let initial = catalog.active_ids();
        let out = shrinking_set(
            &db,
            &mut catalog,
            &Optimizer::default(),
            &workload,
            &initial,
            Equivalence::ExecutionTree,
            true,
        )
        .unwrap();
        for id in &out.removed {
            assert!(catalog.is_drop_listed(*id));
        }
        assert_eq!(catalog.active_count(), out.essential.len());
    }

    #[test]
    fn irrelevant_statistics_need_no_optimizer_calls() {
        let db = setup();
        // Workload touches only `facts.a`; a statistic on dim.label is
        // irrelevant to it and must be removed by the relevance pre-filter.
        let workload = vec![bind(&db, "SELECT * FROM facts WHERE a = 1")];
        let mut catalog = StatsCatalog::new();
        let dim = db.table_id("dim").unwrap();
        let irrelevant = catalog
            .create_statistic(&db, StatDescriptor::single(dim, 1))
            .unwrap();
        let initial = vec![irrelevant];
        let out = shrinking_set(
            &db,
            &mut catalog,
            &Optimizer::default(),
            &workload,
            &initial,
            Equivalence::ExecutionTree,
            false,
        )
        .unwrap();
        assert_eq!(out.removed, vec![irrelevant]);
        // Only the reference plan needed an optimizer call.
        assert_eq!(out.optimizer_calls, workload.len());
    }

    #[test]
    fn call_count_bounded_by_s_times_w() {
        let db = setup();
        let workload = vec![
            bind(&db, "SELECT * FROM facts WHERE a = 1"),
            bind(&db, "SELECT * FROM facts WHERE b < 3"),
        ];
        let mut catalog = StatsCatalog::new();
        let facts = db.table_id("facts").unwrap();
        for c in [0usize, 1, 2] {
            catalog
                .create_statistic(&db, StatDescriptor::single(facts, c))
                .unwrap();
        }
        let initial = catalog.active_ids();
        let out = shrinking_set(
            &db,
            &mut catalog,
            &Optimizer::default(),
            &workload,
            &initial,
            Equivalence::TCost(20.0),
            false,
        )
        .unwrap();
        // Per-pass bound |S|*|W|, at most |S|+1 passes, plus the references.
        assert!(
            out.optimizer_calls
                <= initial.len() * workload.len() * (initial.len() + 1) + workload.len()
        );
    }
}
