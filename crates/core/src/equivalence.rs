//! Equivalence of sets of statistics with respect to a query (§3.2).
//!
//! Two statistics sets are compared through the optimizations they induce:
//!
//! * **Execution-Tree equivalence** — the optimizer produces the same
//!   execution tree (strongest; implies execution-cost equivalence);
//! * **Optimizer-Cost equivalence** — the optimizer-estimated costs are
//!   equal (plans may differ);
//! * **t-Optimizer-Cost equivalence** — the estimated costs are within t% of
//!   each other (the pragmatic choice; the paper uses t = 20%).

use optimizer::{costs_within_t, OptimizedQuery};
use serde::{Deserialize, Serialize};

/// Which equivalence notion to apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Equivalence {
    ExecutionTree,
    OptimizerCost,
    /// t-Optimizer-Cost with the threshold in percent.
    TCost(f64),
}

impl Equivalence {
    /// The paper's production setting: t-Optimizer-Cost at 20%.
    pub fn paper_default() -> Self {
        Equivalence::TCost(20.0)
    }

    /// Are two optimizer results equivalent under this notion?
    pub fn equivalent(&self, a: &OptimizedQuery, b: &OptimizedQuery) -> bool {
        match self {
            Equivalence::ExecutionTree => a.plan.same_tree(&b.plan),
            Equivalence::OptimizerCost => costs_within_t(a.cost, b.cost, 1e-9),
            Equivalence::TCost(t) => costs_within_t(a.cost, b.cost, *t),
        }
    }

    /// Are two raw costs equivalent (tree equivalence cannot be decided from
    /// costs alone and returns exact-cost comparison instead).
    pub fn costs_equivalent(&self, a: f64, b: f64) -> bool {
        match self {
            Equivalence::ExecutionTree | Equivalence::OptimizerCost => costs_within_t(a, b, 1e-9),
            Equivalence::TCost(t) => costs_within_t(a, b, *t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimizer::{Operator, PlanNode, SelectivityProfile};
    use storage::TableId;

    fn result(plan: PlanNode) -> OptimizedQuery {
        OptimizedQuery {
            cost: plan.est_cost,
            magic_variables: vec![],
            profile: empty_profile(),
            plan,
        }
    }

    fn empty_profile() -> SelectivityProfile {
        // Build via the public path: a profile of a query with no predicates.
        use optimizer::MagicNumbers;
        use query::{BoundSelect, Projection};
        use stats::StatsCatalog;
        use storage::{ColumnDef, DataType, Database, Schema};
        let mut db = Database::new();
        let t = db
            .create_table("t", Schema::new(vec![ColumnDef::new("a", DataType::Int)]))
            .unwrap();
        let q = BoundSelect {
            relations: vec![(t, "t".into())],
            projection: Projection::Star,
            aggregates: vec![],
            selections: vec![],
            join_edges: vec![],
            group_by: vec![],
            order_by: vec![],
        };
        let cat = StatsCatalog::new();
        optimizer::selectivity::build_profile(
            &db,
            &cat.full_view(),
            &q,
            &MagicNumbers::default(),
            &Default::default(),
        )
    }

    fn scan(preds: Vec<usize>, cost: f64) -> PlanNode {
        PlanNode::leaf(
            Operator::SeqScan {
                rel: 0,
                table: TableId(0),
                preds,
            },
            10.0,
            cost,
        )
    }

    #[test]
    fn tree_equivalence_ignores_cost() {
        let e = Equivalence::ExecutionTree;
        assert!(e.equivalent(&result(scan(vec![0], 10.0)), &result(scan(vec![0], 99.0))));
        assert!(!e.equivalent(&result(scan(vec![0], 10.0)), &result(scan(vec![1], 10.0))));
    }

    #[test]
    fn cost_equivalences() {
        let same = result(scan(vec![0], 100.0));
        let close = result(scan(vec![1], 115.0));
        let far = result(scan(vec![1], 150.0));
        assert!(Equivalence::OptimizerCost.equivalent(&same, &result(scan(vec![9], 100.0))));
        assert!(!Equivalence::OptimizerCost.equivalent(&same, &close));
        assert!(Equivalence::TCost(20.0).equivalent(&same, &close));
        assert!(!Equivalence::TCost(20.0).equivalent(&same, &far));
    }

    #[test]
    fn paper_default_is_t20() {
        assert_eq!(Equivalence::paper_default(), Equivalence::TCost(20.0));
        assert!(Equivalence::paper_default().costs_equivalent(100.0, 118.0));
        assert!(!Equivalence::paper_default().costs_equivalent(100.0, 125.0));
    }
}
