//! Policy layer for automating statistics management (§6).
//!
//! §4 and §5 are *mechanisms*; this module provides the *policies* that
//! deploy them:
//!
//! * **On-the-fly creation** ([`CreationPolicy`]) — the most aggressive
//!   policy builds statistics for each incoming query before optimizing it.
//!   SQL Server 7.0's auto-statistics mode (create all syntactically
//!   relevant single-column statistics) is the baseline; MNSA / MNSA/D
//!   "significantly reduce the time spent on creating statistics on the
//!   fly".
//! * **Offline tuning** ([`OfflineTuner`]) — the most conservative policy: a
//!   periodic process runs MNSA over the workload and then the Shrinking Set
//!   algorithm to eliminate non-essential statistics.
//! * **Aging** — configured on [`MnsaConfig`](crate::MnsaConfig); dampens
//!   re-creation of recently dropped statistics.
//! * The **auto-update/auto-drop** loop itself lives in
//!   [`stats::StatsCatalog::maintain`], restricted to drop-listed statistics
//!   per the paper's improved policy.

use crate::equivalence::Equivalence;
use crate::error::TuneError;
use crate::journal::SessionReport;
use crate::mnsa::{MnsaConfig, MnsaEngine, MnsaOutcome};
use crate::parallel::ParallelTuner;
use crate::shrinking::shrinking_set_traced;
use optimizer::OptimizeCache;
use query::BoundSelect;
use serde::{Deserialize, Serialize};
use stats::{StatId, StatsCatalog};
use std::sync::Arc;
use storage::Database;

/// How statistics are created for incoming queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CreationPolicy {
    /// Create nothing automatically.
    Manual,
    /// SQL Server 7.0 auto-statistics: every syntactically relevant
    /// single-column statistic, unconditionally.
    CreateAllSyntactic,
    /// Create the full §7.1 candidate set, unconditionally.
    CreateAllCandidates,
    /// Magic Number Sensitivity Analysis (optionally with drop detection —
    /// set `drop_detection` in the config for MNSA/D).
    Mnsa(MnsaConfig),
}

impl Default for CreationPolicy {
    fn default() -> Self {
        CreationPolicy::Mnsa(MnsaConfig::default())
    }
}

/// Deterministic work charged per optimizer invocation, used to include the
/// MNSA overhead in "statistics creation time" as §8.2 does. Join
/// enumeration is exponential in the relation count; statistic builds cost
/// `O(rows log rows)`, so optimizer calls are cheap but not free.
pub fn optimizer_call_work(n_relations: usize) -> f64 {
    25.0 * (1u64 << n_relations.min(16)) as f64
}

/// Outcome of applying a creation policy or an offline tuning pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TuningReport {
    pub statistics_created: usize,
    pub statistics_drop_listed: usize,
    pub optimizer_calls: usize,
    /// Work spent building statistics during this pass.
    pub creation_work: f64,
    /// Work attributed to the tuning algorithm's optimizer calls.
    pub overhead_work: f64,
}

impl TuningReport {
    /// Total "statistics creation time" including analysis overhead — the
    /// quantity Figures 3 and 4 compare.
    pub fn total_work(&self) -> f64 {
        self.creation_work + self.overhead_work
    }

    pub fn absorb(&mut self, other: &TuningReport) {
        self.statistics_created += other.statistics_created;
        self.statistics_drop_listed += other.statistics_drop_listed;
        self.optimizer_calls += other.optimizer_calls;
        self.creation_work += other.creation_work;
        self.overhead_work += other.overhead_work;
    }
}

/// Candidates not yet built (nor drop-listed), deduplicated in order — the
/// set a serial `find_built`-guarded creation loop would actually build.
fn unbuilt(
    catalog: &StatsCatalog,
    candidates: Vec<stats::StatDescriptor>,
) -> Vec<stats::StatDescriptor> {
    let mut seen = std::collections::HashSet::new();
    candidates
        .into_iter()
        .filter(|d| catalog.find_built(d).is_none())
        .filter(|d| seen.insert(d.clone()))
        .collect()
}

/// Apply a creation policy for one incoming query. Returns the report and
/// the ids of statistics created.
pub fn apply_policy(
    db: &Database,
    catalog: &mut StatsCatalog,
    policy: &CreationPolicy,
    query: &BoundSelect,
) -> Result<(TuningReport, Vec<StatId>), TuneError> {
    apply_policy_cached(db, catalog, policy, query, None)
}

/// [`apply_policy`] with an optional memoized-optimizer cache routed into
/// the MNSA analysis calls. Reports and created-statistics sets are
/// identical with or without a cache.
pub fn apply_policy_cached(
    db: &Database,
    catalog: &mut StatsCatalog,
    policy: &CreationPolicy,
    query: &BoundSelect,
    cache: Option<&Arc<OptimizeCache>>,
) -> Result<(TuningReport, Vec<StatId>), TuneError> {
    apply_policy_obs(db, catalog, policy, query, cache, &obsv::Obs::disabled())
        .map(|(report, created, _)| (report, created))
}

/// [`apply_policy_cached`] under an observability context. The MNSA arm also
/// returns its raw [`MnsaOutcome`] so callers can journal the trajectory;
/// `None` for the unconditional policies. Reports, created sets, and catalog
/// state are identical with or without observation.
pub fn apply_policy_obs(
    db: &Database,
    catalog: &mut StatsCatalog,
    policy: &CreationPolicy,
    query: &BoundSelect,
    cache: Option<&Arc<OptimizeCache>>,
    obs: &obsv::Obs,
) -> Result<(TuningReport, Vec<StatId>, Option<MnsaOutcome>), TuneError> {
    let mut report = TuningReport::default();
    let before_work = catalog.creation_work();
    let mut created = Vec::new();
    let mut mnsa_outcome = None;
    match policy {
        CreationPolicy::Manual => {}
        CreationPolicy::CreateAllSyntactic => {
            let descs = unbuilt(catalog, crate::candidates::single_column_candidates(query));
            created = crate::batch::create_statistics_grouped(catalog, db, &descs)?;
        }
        CreationPolicy::CreateAllCandidates => {
            let descs = unbuilt(catalog, crate::candidates::candidate_statistics(query));
            created = crate::batch::create_statistics_grouped(catalog, db, &descs)?;
        }
        CreationPolicy::Mnsa(cfg) => {
            let mut engine = MnsaEngine::new(*cfg).with_obs(obs.clone());
            if let Some(cache) = cache {
                engine = engine.with_cache(Arc::clone(cache));
            }
            let outcome = engine.run_query(db, catalog, query)?;
            report.optimizer_calls = outcome.optimizer_calls;
            report.overhead_work =
                outcome.optimizer_calls as f64 * optimizer_call_work(query.relations.len());
            report.statistics_drop_listed = outcome.drop_listed.len();
            created = outcome.created.clone();
            mnsa_outcome = Some(outcome);
        }
    }
    report.statistics_created = created.len();
    report.creation_work = catalog.creation_work() - before_work;
    Ok((report, created, mnsa_outcome))
}

/// The conservative periodic process of §6: MNSA over every workload query,
/// then (optionally) Shrinking Set to eliminate non-essential statistics.
#[derive(Debug, Clone)]
pub struct OfflineTuner {
    pub mnsa: MnsaConfig,
    /// Equivalence used by the Shrinking Set pass; `None` skips shrinking.
    pub shrink: Option<Equivalence>,
    /// Worker threads for the per-query MNSA phase; `1` tunes serially. Any
    /// value yields bit-identical reports and catalog state (see
    /// [`ParallelTuner`]).
    pub threads: usize,
}

impl Default for OfflineTuner {
    fn default() -> Self {
        OfflineTuner {
            mnsa: MnsaConfig::default(),
            shrink: Some(Equivalence::paper_default()),
            threads: 1,
        }
    }
}

impl OfflineTuner {
    /// Tune the catalog for the workload. Statistics found non-essential by
    /// Shrinking Set are moved to the drop-list.
    pub fn tune(
        &self,
        db: &Database,
        catalog: &mut StatsCatalog,
        workload: &[BoundSelect],
    ) -> Result<TuningReport, TuneError> {
        self.tune_cached(db, catalog, workload, None)
    }

    /// [`OfflineTuner::tune`] with an optional memoized-optimizer cache for
    /// the MNSA analysis calls.
    pub fn tune_cached(
        &self,
        db: &Database,
        catalog: &mut StatsCatalog,
        workload: &[BoundSelect],
        cache: Option<&Arc<OptimizeCache>>,
    ) -> Result<TuningReport, TuneError> {
        self.tune_session(db, catalog, workload, cache, &obsv::Obs::disabled())
            .map(|(report, _)| report)
    }

    /// [`OfflineTuner::tune_cached`] under an observability context, also
    /// returning the tuning-session journal. The journal is built from the
    /// per-query [`crate::MnsaOutcome`]s, which are bit-identical across
    /// thread counts and with tracing on or off — so the journal is too.
    pub fn tune_session(
        &self,
        db: &Database,
        catalog: &mut StatsCatalog,
        workload: &[BoundSelect],
        cache: Option<&Arc<OptimizeCache>>,
        obs: &obsv::Obs,
    ) -> Result<(TuningReport, SessionReport), TuneError> {
        let mut session_span = obs.tracer.span("tuner.session");
        session_span.arg("queries", workload.len());
        session_span.arg("threads", self.threads);
        let mut report = TuningReport::default();
        let mut session = SessionReport::default();
        let mut engine = MnsaEngine::new(self.mnsa).with_obs(obs.clone());
        if let Some(cache) = cache {
            engine = engine.with_cache(Arc::clone(cache));
        }
        let before_work = catalog.creation_work();
        let mut created_ids = Vec::new();
        let tuner = ParallelTuner::new(engine.clone(), self.threads);
        for (q, outcome) in workload
            .iter()
            .zip(tuner.run_workload(db, catalog, workload)?)
        {
            report.optimizer_calls += outcome.optimizer_calls;
            report.overhead_work +=
                outcome.optimizer_calls as f64 * optimizer_call_work(q.relations.len());
            report.statistics_created += outcome.created.len();
            report.statistics_drop_listed += outcome.drop_listed.len();
            session.record_query(q.relations.len(), &outcome);
            created_ids.extend(outcome.created);
        }
        report.creation_work = catalog.creation_work() - before_work;

        if let Some(equiv) = self.shrink {
            let initial = catalog.active_ids();
            let out = shrinking_set_traced(
                db,
                catalog,
                &engine.optimizer,
                workload,
                &initial,
                equiv,
                true,
                obs,
            )?;
            report.optimizer_calls += out.optimizer_calls;
            report.overhead_work += out.optimizer_calls as f64
                * optimizer_call_work(
                    workload
                        .iter()
                        .map(|q| q.relations.len())
                        .max()
                        .unwrap_or(1),
                );
            report.statistics_drop_listed += out.removed.len();
            session.shrink_removed = out.removed.len();
            session.shrink_optimizer_calls = out.optimizer_calls;
        }
        catalog.advance_epoch();
        session.totals = report.clone();
        session_span.arg("optimizer_calls", report.optimizer_calls);
        session_span.arg("statistics_created", report.statistics_created);
        session_span.arg("statistics_drop_listed", report.statistics_drop_listed);
        Ok((report, session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::{bind_statement, parse_statement, BoundStatement};
    use storage::{ColumnDef, DataType, Schema, Value};

    fn setup() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "sales",
                Schema::new(vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("region", DataType::Int),
                    ColumnDef::new("amount", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..2500i64 {
            let amount = if i % 80 == 0 { 900 + i % 100 } else { i % 500 };
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i % 12), Value::Int(amount)])
                .unwrap();
        }
        db
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!(),
        }
    }

    #[test]
    fn create_all_syntactic_builds_every_single() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM sales WHERE region = 3 AND amount > 800");
        let mut catalog = StatsCatalog::new();
        let (report, created) =
            apply_policy(&db, &mut catalog, &CreationPolicy::CreateAllSyntactic, &q).unwrap();
        assert_eq!(created.len(), 2);
        assert_eq!(report.statistics_created, 2);
        assert!(report.creation_work > 0.0);
        assert_eq!(report.overhead_work, 0.0, "no analysis overhead");
    }

    #[test]
    fn create_all_candidates_includes_multicolumn() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM sales WHERE region = 3 AND amount > 800");
        let mut catalog = StatsCatalog::new();
        let (_, created) =
            apply_policy(&db, &mut catalog, &CreationPolicy::CreateAllCandidates, &q).unwrap();
        assert_eq!(created.len(), 3); // region, amount, (region, amount)
    }

    #[test]
    fn mnsa_policy_charges_overhead() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM sales WHERE region = 3 AND amount > 800");
        let mut catalog = StatsCatalog::new();
        let (report, _) = apply_policy(
            &db,
            &mut catalog,
            &CreationPolicy::Mnsa(MnsaConfig::default()),
            &q,
        )
        .unwrap();
        assert!(report.optimizer_calls >= 3);
        assert!(report.overhead_work > 0.0);
        assert!(report.total_work() >= report.creation_work);
    }

    #[test]
    fn manual_policy_is_a_noop() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM sales WHERE region = 3");
        let mut catalog = StatsCatalog::new();
        let (report, created) =
            apply_policy(&db, &mut catalog, &CreationPolicy::Manual, &q).unwrap();
        assert!(created.is_empty());
        assert_eq!(report, TuningReport::default());
    }

    #[test]
    fn offline_tuner_shrinks_after_mnsa() {
        let db = setup();
        let workload = vec![
            bind(&db, "SELECT * FROM sales WHERE amount > 800"),
            bind(
                &db,
                "SELECT region, COUNT(*) FROM sales WHERE amount > 800 GROUP BY region",
            ),
        ];
        let mut catalog = StatsCatalog::new();
        let tuner = OfflineTuner::default();
        let report = tuner.tune(&db, &mut catalog, &workload).unwrap();
        // Whatever was created, the active set is minimal afterwards; epoch
        // advanced for aging bookkeeping.
        assert_eq!(catalog.epoch(), 1);
        assert!(catalog.active_count() <= report.statistics_created.max(1));
    }

    #[test]
    fn optimizer_call_work_grows_with_relations() {
        assert!(optimizer_call_work(8) > optimizer_call_work(2));
        assert_eq!(optimizer_call_work(20), optimizer_call_work(16));
    }
}
