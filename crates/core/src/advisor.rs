//! A what-if statistics advisor.
//!
//! §2 of the paper connects statistics selection to index-tuning tools
//! ("the new generation of index tuning tools builds statistics to determine
//! the appropriate choice of indexes … such tools will directly benefit from
//! the techniques proposed in this paper"). This module packages the same
//! machinery — MNSA followed by Shrinking Set — as a *read-only advisor*: it
//! analyzes a workload against a snapshot of the current catalog and reports
//! which statistics are worth creating and which existing ones are
//! non-essential, with estimated build/update work attached, without
//! touching the live catalog.

use crate::equivalence::Equivalence;
use crate::error::TuneError;
use crate::mnsa::{MnsaConfig, MnsaEngine};
use crate::parallel::ParallelTuner;
use crate::shrinking::shrinking_set;
use query::BoundSelect;
use serde::{Deserialize, Serialize};
use stats::{StatDescriptor, StatsCatalog};
use storage::Database;

/// One recommended action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Recommendation {
    /// Build this statistic; MNSA found the plan cost sensitive to it.
    Create {
        descriptor: StatDescriptor,
        /// Deterministic work the build would cost now.
        build_work: f64,
    },
    /// An existing statistic the workload does not need (Shrinking Set
    /// verified removing it leaves every plan equivalent).
    Drop {
        descriptor: StatDescriptor,
        /// Update work saved per refresh cycle by dropping it.
        update_work_saved: f64,
    },
}

/// The advisor's output.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdvisorReport {
    pub recommendations: Vec<Recommendation>,
    pub queries_analyzed: usize,
    /// Total build work of all Create recommendations.
    pub total_build_work: f64,
    /// Total per-cycle update work saved by all Drop recommendations.
    pub total_update_savings: f64,
    pub optimizer_calls: usize,
}

impl AdvisorReport {
    pub fn creates(&self) -> impl Iterator<Item = &Recommendation> {
        self.recommendations
            .iter()
            .filter(|r| matches!(r, Recommendation::Create { .. }))
    }

    pub fn drops(&self) -> impl Iterator<Item = &Recommendation> {
        self.recommendations
            .iter()
            .filter(|r| matches!(r, Recommendation::Drop { .. }))
    }

    /// Human-readable rendering (column names resolved against `db`).
    pub fn render(&self, db: &Database) -> String {
        let name = |d: &StatDescriptor| -> String {
            // The table may have been dropped since the report was produced;
            // fall back to raw ids rather than failing the rendering.
            let Ok(table) = db.try_table(d.table) else {
                let cols: Vec<String> = d.columns.iter().map(|c| format!("#{c}")).collect();
                return format!("<dropped table {}>({})", d.table.0, cols.join(", "));
            };
            let cols: Vec<String> = d
                .columns
                .iter()
                .map(|&c| {
                    table
                        .schema()
                        .columns()
                        .get(c)
                        .map(|col| col.name.clone())
                        .unwrap_or_else(|| format!("#{c}"))
                })
                .collect();
            format!("{}({})", table.name(), cols.join(", "))
        };
        let mut out = format!(
            "statistics advisor: {} queries analyzed, {} optimizer calls\n",
            self.queries_analyzed, self.optimizer_calls
        );
        for r in &self.recommendations {
            match r {
                Recommendation::Create {
                    descriptor,
                    build_work,
                } => {
                    out.push_str(&format!(
                        "  CREATE STATISTICS ON {:<40} (build work {:.0})\n",
                        name(descriptor),
                        build_work
                    ));
                }
                Recommendation::Drop {
                    descriptor,
                    update_work_saved,
                } => {
                    out.push_str(&format!(
                        "  DROP   STATISTICS ON {:<40} (saves {:.0}/refresh)\n",
                        name(descriptor),
                        update_work_saved
                    ));
                }
            }
        }
        out.push_str(&format!(
            "  total: build work {:.0}, update savings {:.0}/refresh\n",
            self.total_build_work, self.total_update_savings
        ));
        out
    }
}

/// Analyze `workload` against a snapshot of `catalog` and recommend
/// creations and drops. The live catalog is never modified.
pub fn advise(
    db: &Database,
    catalog: &StatsCatalog,
    workload: &[BoundSelect],
    config: MnsaConfig,
    equivalence: Equivalence,
) -> Result<AdvisorReport, TuneError> {
    advise_parallel(db, catalog, workload, config, equivalence, 1)
}

/// [`advise`] with the per-query MNSA phase fanned over `threads` worker
/// threads. The report is bit-identical for every thread count (see
/// [`ParallelTuner`]).
pub fn advise_parallel(
    db: &Database,
    catalog: &StatsCatalog,
    workload: &[BoundSelect],
    config: MnsaConfig,
    equivalence: Equivalence,
    threads: usize,
) -> Result<AdvisorReport, TuneError> {
    // Work on a restored snapshot so the live catalog is untouched.
    let mut scratch = StatsCatalog::restore(catalog.snapshot());
    let original_active: Vec<StatDescriptor> =
        catalog.active().map(|s| s.descriptor.clone()).collect();

    let engine = MnsaEngine::new(config);
    let mut report = AdvisorReport {
        queries_analyzed: workload.len(),
        ..Default::default()
    };
    let tuner = ParallelTuner::new(engine.clone(), threads);
    for outcome in tuner.run_workload(db, &mut scratch, workload)? {
        report.optimizer_calls += outcome.optimizer_calls;
    }
    let after_mnsa = scratch.active_ids();
    let shrink = shrinking_set(
        db,
        &mut scratch,
        &engine.optimizer,
        workload,
        &after_mnsa,
        equivalence,
        true,
    )?;
    report.optimizer_calls += shrink.optimizer_calls;

    // Diff the surviving essential set against the original catalog.
    let essential: Vec<&stats::Statistic> = shrink
        .essential
        .iter()
        .filter_map(|&id| scratch.statistic(id))
        .collect();
    for s in &essential {
        if !original_active.contains(&s.descriptor) {
            report.total_build_work += s.build_cost;
            report.recommendations.push(Recommendation::Create {
                descriptor: s.descriptor.clone(),
                build_work: s.build_cost,
            });
        }
    }
    for d in &original_active {
        if !essential.iter().any(|s| &s.descriptor == d) {
            let saved = catalog
                .find_active(d)
                .map(|id| catalog.update_cost_of(db, [id]))
                .unwrap_or(0.0);
            report.total_update_savings += saved;
            report.recommendations.push(Recommendation::Drop {
                descriptor: d.clone(),
                update_work_saved: saved,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::{bind_statement, parse_statement, BoundStatement};
    use storage::{ColumnDef, DataType, Schema, Value};

    fn setup() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "events",
                Schema::new(vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("kind", DataType::Int),
                    ColumnDef::new("severity", DataType::Int),
                    ColumnDef::new("unused", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..3000i64 {
            let sev = if i % 70 == 0 { 99 } else { i % 5 };
            db.table_mut(t)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 11),
                    Value::Int(sev),
                    Value::Int(i % 3),
                ])
                .unwrap();
        }
        // An index on severity gives the optimizer a real choice, so
        // statistics on it are essential (not merely cost-cosmetic).
        db.create_index("idx_events_severity", t, vec![2]).unwrap();
        db
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!(),
        }
    }

    #[test]
    fn advisor_recommends_creates_without_mutating_catalog() {
        let db = setup();
        let workload = vec![
            bind(&db, "SELECT * FROM events WHERE severity = 99"),
            bind(
                &db,
                "SELECT kind, COUNT(*) FROM events WHERE severity = 99 GROUP BY kind",
            ),
        ];
        let catalog = StatsCatalog::new();
        let report = advise(
            &db,
            &catalog,
            &workload,
            MnsaConfig::default(),
            Equivalence::paper_default(),
        )
        .unwrap();
        assert_eq!(catalog.total_count(), 0, "live catalog must stay untouched");
        assert!(report.creates().count() > 0, "no creates recommended");
        assert_eq!(report.drops().count(), 0);
        assert!(report.total_build_work > 0.0);
        let text = report.render(&db);
        assert!(text.contains("CREATE STATISTICS ON events"), "{text}");
    }

    #[test]
    fn advisor_recommends_dropping_irrelevant_statistics() {
        let db = setup();
        let t = db.table_id("events").unwrap();
        let mut catalog = StatsCatalog::new();
        // A statistic on a column no workload query touches.
        catalog
            .create_statistic(&db, StatDescriptor::single(t, 3))
            .unwrap();
        let workload = vec![bind(&db, "SELECT * FROM events WHERE severity = 99")];
        let report = advise(
            &db,
            &catalog,
            &workload,
            MnsaConfig::default(),
            Equivalence::paper_default(),
        )
        .unwrap();
        assert!(
            report
                .drops()
                .any(|r| matches!(r, Recommendation::Drop { descriptor, .. }
                    if descriptor == &StatDescriptor::single(t, 3))),
            "unused statistic not flagged for dropping"
        );
        assert!(report.total_update_savings > 0.0);
        // The live catalog still holds it, active.
        assert_eq!(catalog.active_count(), 1);
    }

    #[test]
    fn advisor_keeps_needed_existing_statistics() {
        let db = setup();
        let t = db.table_id("events").unwrap();
        let mut catalog = StatsCatalog::new();
        catalog
            .create_statistic(&db, StatDescriptor::single(t, 2))
            .unwrap(); // severity
        let workload = vec![bind(&db, "SELECT * FROM events WHERE severity = 99")];
        let report = advise(
            &db,
            &catalog,
            &workload,
            MnsaConfig::default(),
            Equivalence::paper_default(),
        )
        .unwrap();
        // severity stat is needed (plan-changing) — must not be dropped.
        assert!(!report
            .drops()
            .any(|r| matches!(r, Recommendation::Drop { descriptor, .. }
                if descriptor == &StatDescriptor::single(t, 2))),);
    }
}
