//! Parallel workload tuning with optimistic speculation.
//!
//! §4.3 of the paper derives workload-level tuning from per-query MNSA:
//! "a sufficient set of statistics for a workload can be obtained by
//! invoking MNSA for each query". The per-query runs are *almost*
//! independent — each one reads and mutates only the statistics of the
//! tables its query references — and that locality is what
//! [`ParallelTuner`] exploits.
//!
//! ## Protocol
//!
//! 1. **Snapshot.** The catalog is snapshotted once.
//! 2. **Speculate** (parallel). Each worker picks the next unprocessed query,
//!    restores a private scratch catalog from the snapshot, runs MNSA on it,
//!    and records (a) the outcome, (b) the *descriptors* created in creation
//!    order, and (c) a **base signature**: a fingerprint of the snapshot's
//!    built statistics on the query's referenced tables.
//! 3. **Commit** (serial, in query order — this is the deterministic merge
//!    rule). For each query in workload order, the tuner re-fingerprints the
//!    *live* catalog over the same tables:
//!    * **signature match** — no earlier commit touched the tables this
//!      speculation depends on, so its trajectory is exactly what a serial
//!      run would have done here. The creations are *replayed* onto the live
//!      catalog (same descriptors, same order — hence the same `StatId`s a
//!      serial run would allocate), drop-list moves are applied, and the
//!      outcome's ids are rewritten to the live ids.
//!    * **signature mismatch** — an earlier query changed this query's
//!      statistics context; the speculation is discarded and MNSA re-runs
//!      serially on the live catalog.
//!
//! Because commits happen in workload order and each commit either replays a
//! trajectory proven identical to the serial one or actually runs serially,
//! the final catalog state and every returned [`MnsaOutcome`] are
//! **bit-identical to a serial run** — `tests/parallel_tuner_equivalence.rs`
//! verifies this differentially across thread counts and workload seeds.
//!
//! ## When speculation is sound
//!
//! The signature check covers everything a per-query MNSA run reads from
//! shared mutable state, under two preconditions enforced by serial
//! fallback:
//!
//! * **Full-scan statistics builds.** Under sampling, a statistic's content
//!   depends on its sampling seed, which mixes in the allocated `StatId` —
//!   scratch-catalog ids differ from live ids, so replayed content could
//!   differ. With [`SampleSpec::FullScan`] (the default) content is
//!   id-independent.
//! * **No aging policy.** Aging consults drop timestamps of *any* table's
//!   statistics, which the per-table signature does not cover.

use crate::error::TuneError;
use crate::mnsa::{MnsaEngine, MnsaOutcome};
use optimizer::cache::Fnv;
use parking_lot::Mutex;
use query::BoundSelect;
use rustc_hash::FxHashMap;
use stats::{SampleSpec, StatDescriptor, StatsCatalog};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use storage::{Database, TableId};

/// One worker's speculative MNSA run for one query.
struct Speculation {
    outcome: MnsaOutcome,
    /// Descriptors of `outcome.created`, in creation order (ids are
    /// scratch-local and meaningless outside the worker).
    created_descs: Vec<StatDescriptor>,
    /// Fingerprint of the snapshot's statistics on `tables`.
    base_sig: u64,
    /// The query's referenced tables, sorted and deduplicated.
    tables: Vec<TableId>,
}

/// Fans per-query MNSA across a thread pool; output is bit-identical to
/// [`MnsaEngine::run_workload`].
#[derive(Debug, Clone)]
pub struct ParallelTuner {
    pub engine: MnsaEngine,
    /// Worker thread count; `<= 1` runs serially.
    pub threads: usize,
}

impl ParallelTuner {
    pub fn new(engine: MnsaEngine, threads: usize) -> Self {
        ParallelTuner { engine, threads }
    }

    /// True when the optimistic protocol's preconditions hold (see module
    /// docs); otherwise `run_workload` falls back to the serial loop.
    fn can_speculate(&self, catalog: &StatsCatalog, queries: &[BoundSelect]) -> bool {
        self.threads > 1
            && queries.len() > 1
            && self.engine.config.aging.is_none()
            && catalog.build_options().sample == SampleSpec::FullScan
    }

    /// Run MNSA for every query of `queries`, in workload order semantics.
    ///
    /// Speculation is best-effort: a worker whose per-query run errors or
    /// panics simply leaves its slot empty, and that query re-runs serially
    /// at commit time — so a fault injected into one speculation degrades to
    /// the serial path instead of poisoning the whole workload.
    pub fn run_workload(
        &self,
        db: &Database,
        catalog: &mut StatsCatalog,
        queries: &[BoundSelect],
    ) -> Result<Vec<MnsaOutcome>, TuneError> {
        if !self.can_speculate(catalog, queries) {
            return self.engine.run_workload(db, catalog, queries);
        }

        let snapshot = catalog.snapshot();
        let n = queries.len();
        let slots: Vec<Mutex<Option<Speculation>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);

        let slots_ref = &slots;
        let next_ref = &next;
        let snapshot_ref = &snapshot;
        let scope_ok = crossbeam::thread::scope(|s| {
            for w in 0..workers {
                // Each worker records into its own forked trace buffer (tid
                // = worker index + 1; the committing thread is tid 0), so
                // speculative span trees never contend on one lock and carry
                // their worker's id into the merged trace.
                let engine = self
                    .engine
                    .clone()
                    .with_obs(self.engine.obs.fork(w as u64 + 1));
                s.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let query = &queries[i];
                    // A panic inside one speculation must not take down the
                    // workload: catch it and leave the slot empty, which the
                    // commit loop treats as "re-run serially".
                    let spec = catch_unwind(AssertUnwindSafe(|| {
                        speculate(&engine, db, snapshot_ref, query)
                    }))
                    .ok()
                    .flatten();
                    *slots_ref[i].lock() = spec;
                });
            }
        })
        .is_ok();
        if !scope_ok {
            // A worker died in a way the per-query guard could not contain;
            // the live catalog is untouched, so the serial path is still valid.
            return self.engine.run_workload(db, catalog, queries);
        }

        // Deterministic merge: commit in workload order.
        let mut commit_span = self.engine.obs.tracer.span("tuner.commit");
        let (mut n_replayed, mut n_rerun, mut n_failed) = (0u64, 0u64, 0u64);
        let mut results = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.into_inner() {
                Some(spec) if tables_signature(catalog, &spec.tables) == spec.base_sig => {
                    n_replayed += 1;
                    results.push(replay(db, catalog, spec)?);
                }
                missed => {
                    // Either an earlier query changed this query's statistics
                    // context (stale speculation) or the speculation itself
                    // failed: run on the live catalog instead.
                    if missed.is_none() {
                        n_failed += 1;
                    }
                    n_rerun += 1;
                    results.push(self.engine.run_query(db, catalog, &queries[i])?);
                }
            }
        }
        commit_span.arg("replayed", n_replayed);
        commit_span.arg("serial_rerun", n_rerun);
        commit_span.arg("speculation_failed", n_failed);
        let metrics = &self.engine.obs.metrics;
        metrics.counter("tuner.commit.replayed").add(n_replayed);
        metrics.counter("tuner.commit.serial_rerun").add(n_rerun);
        metrics.counter("tuner.speculation.failed").add(n_failed);
        Ok(results)
    }
}

/// One speculative per-query MNSA run against a scratch catalog restored
/// from `snapshot`. `None` means the speculation failed (typed error in
/// the scratch run); the caller falls back to the serial path.
fn speculate(
    engine: &MnsaEngine,
    db: &Database,
    snapshot: &stats::CatalogSnapshot,
    query: &BoundSelect,
) -> Option<Speculation> {
    let tables = referenced_tables(query);
    // The snapshot state is what this speculation reads; its fingerprint
    // is recomputed over the live catalog at commit time to validate the
    // speculation.
    let mut scratch = StatsCatalog::restore(snapshot.clone());
    let base_sig = tables_signature(&scratch, &tables);
    let outcome = engine.run_query(db, &mut scratch, query).ok()?;
    let created_descs = outcome
        .created
        .iter()
        .map(|&id| Some(scratch.statistic(id)?.descriptor.clone()))
        .collect::<Option<Vec<_>>>()?;
    Some(Speculation {
        outcome,
        created_descs,
        base_sig,
        tables,
    })
}

/// The query's referenced tables, sorted and deduplicated.
fn referenced_tables(query: &BoundSelect) -> Vec<TableId> {
    let mut tables: Vec<TableId> = query.relations.iter().map(|&(t, _)| t).collect();
    tables.sort();
    tables.dedup();
    tables
}

/// Fingerprint of every *built* statistic (active and drop-listed) on the
/// given tables: id, descriptor, visibility, refresh generation, and build
/// provenance. Two catalog states with equal signatures present an MNSA run
/// on these tables with indistinguishable shared state.
fn tables_signature(catalog: &StatsCatalog, tables: &[TableId]) -> u64 {
    let mut h = Fnv::new();
    for &table in tables {
        h.write(table.0 as u64);
        for s in catalog.built_on_table(table) {
            h.write(s.id.0 as u64)
                .write(s.descriptor.columns.len() as u64);
            for &c in &s.descriptor.columns {
                h.write(c as u64);
            }
            h.write(catalog.is_drop_listed(s.id) as u64)
                .write(s.update_count as u64)
                .write(s.row_count_at_build as u64);
        }
    }
    h.finish()
}

/// Apply a validated speculation to the live catalog: replay creations in
/// order (allocating exactly the ids a serial run would), apply drop-list
/// moves, and rewrite the outcome's scratch-local ids to live ids.
fn replay(
    db: &Database,
    catalog: &mut StatsCatalog,
    spec: Speculation,
) -> Result<MnsaOutcome, TuneError> {
    let mut outcome = spec.outcome;
    let mut id_map = FxHashMap::with_capacity_and_hasher(outcome.created.len(), Default::default());
    // Consecutive same-table creations share one scan; the grouped call
    // allocates exactly the ids a serial `create_statistic` loop would.
    let live_ids = crate::batch::create_statistics_grouped(catalog, db, &spec.created_descs)?;
    for (old, live) in outcome.created.iter().zip(live_ids) {
        id_map.insert(*old, live);
    }
    for id in &mut outcome.created {
        if let Some(&live) = id_map.get(id) {
            *id = live;
        }
    }
    // MNSA/D only drop-lists statistics it created itself, so every
    // drop-listed id is in the map; an unknown id is simply left alone.
    for id in &mut outcome.drop_listed {
        if let Some(&live) = id_map.get(id) {
            *id = live;
            catalog.move_to_drop_list(*id);
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnsa::MnsaConfig;
    use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
    use query::{bind_statement, BoundStatement};

    fn tpcd(scale: f64, seed: u64) -> Database {
        build_tpcd(&TpcdConfig {
            scale,
            zipf: ZipfSpec::Mixed,
            seed,
        })
    }

    fn workload(db: &Database, n: usize, seed: u64) -> Vec<BoundSelect> {
        let spec = WorkloadSpec::new(0, Complexity::Complex, n).with_seed(seed);
        RagsGenerator::generate(db, &spec)
            .iter()
            .filter_map(|stmt| match bind_statement(db, stmt) {
                Ok(BoundStatement::Select(q)) => Some(q),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let db = tpcd(0.01, 42);
        let queries = workload(&db, 12, 7);
        let engine = MnsaEngine::new(MnsaConfig::default().with_drop_detection());

        let mut serial_catalog = StatsCatalog::new();
        let serial = engine
            .run_workload(&db, &mut serial_catalog, &queries)
            .unwrap();

        let tuner = ParallelTuner::new(engine, 4);
        let mut par_catalog = StatsCatalog::new();
        let parallel = tuner.run_workload(&db, &mut par_catalog, &queries).unwrap();

        assert_eq!(serial, parallel);
        assert_eq!(serial_catalog.active_ids(), par_catalog.active_ids());
        assert_eq!(
            serial_catalog.drop_list().collect::<Vec<_>>(),
            par_catalog.drop_list().collect::<Vec<_>>()
        );
        assert_eq!(serial_catalog.creation_work(), par_catalog.creation_work());
    }

    #[test]
    fn single_thread_is_plain_serial() {
        let db = tpcd(0.01, 1);
        let queries = workload(&db, 4, 3);
        let engine = MnsaEngine::new(MnsaConfig::default());
        let tuner = ParallelTuner::new(engine.clone(), 1);
        let mut a = StatsCatalog::new();
        let mut b = StatsCatalog::new();
        assert_eq!(
            tuner.run_workload(&db, &mut a, &queries).unwrap(),
            engine.run_workload(&db, &mut b, &queries).unwrap()
        );
    }
}
