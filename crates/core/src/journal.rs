//! The tuning-session journal: a structured record of what a tuning pass
//! actually did, query by query.
//!
//! Spans and counters (the `obsv` side) answer "where did the time go";
//! the journal answers "what did the tuner decide" — per-query MNSA
//! trajectories (rounds, creations, drop-listings, termination reason,
//! final plan cost), the shrinking pass, and workload totals. It is built
//! from [`MnsaOutcome`]s, never from the metrics registry, so it is
//! bit-identical with tracing on or off and across thread counts.

use crate::mnsa::{MnsaOutcome, Termination};
use crate::policy::TuningReport;
use serde::{Deserialize, Serialize};
use stats::StatId;
use std::fmt::Write as _;
use storage::TableId;

/// One event in an *online* tuning session (the `autod` lifecycle daemon).
///
/// Offline sessions never record these, and the renderers below emit the
/// online section only when at least one event exists, so offline journals
/// stay byte-identical with or without this feature compiled in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OnlineEvent {
    /// A stale statistic was rebuilt by the staleness tracker.
    Refresh {
        tick: u64,
        stat: StatId,
        table: TableId,
        work: f64,
    },
    /// A stale statistic was corrected in place from execution feedback
    /// instead of a scan rebuild (the cheap refresh path).
    FeedbackRefresh {
        tick: u64,
        stat: StatId,
        table: TableId,
        work: f64,
        observations: usize,
    },
    /// The workload monitor evicted a query template from its reservoir.
    MonitorEvict { tick: u64, fingerprint: u64 },
    /// A tick ran out of work-token budget with tuning still pending.
    BudgetExhausted {
        tick: u64,
        pending: usize,
        balance: f64,
    },
    /// The daemon published a new catalog epoch to query threads.
    EpochSwap { tick: u64, generation: u64 },
    /// A serving shard took ownership of a table (or of one hash-partition
    /// slice of it). Recorded at cluster start (tick 0), before any tuning,
    /// so multi-shard replays are auditable and bit-identity tests can pin
    /// the exact placement.
    ShardAssigned {
        tick: u64,
        shard: u32,
        table: TableId,
        /// Rows this shard holds for the table (the slice size when
        /// partitioned, the whole table otherwise).
        rows: u64,
        /// True when the table is hash-partitioned across all shards.
        partitioned: bool,
    },
}

/// One workload query's tuning trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Position in the workload (0-based).
    pub index: usize,
    /// Relations referenced by the query.
    pub relations: usize,
    pub optimizer_calls: usize,
    /// Sensitivity-probe rounds that built statistics.
    pub rounds: usize,
    pub created: usize,
    pub drop_listed: usize,
    /// Candidates never built because the sensitivity test passed first.
    pub skipped: usize,
    /// Estimated plan cost under the final statistics.
    pub final_cost: f64,
    pub terminated_by: Termination,
}

/// What one tuning session (one offline pass, or the life of a manager)
/// did, per query and in total.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    pub queries: Vec<QueryRecord>,
    /// Accumulated work/creation totals (same shape as the policy layer's
    /// per-pass report).
    pub totals: TuningReport,
    /// Statistics removed by the Shrinking Set pass (0 when it did not run).
    pub shrink_removed: usize,
    /// Optimizer calls spent by the Shrinking Set pass.
    pub shrink_optimizer_calls: usize,
    /// Online lifecycle events, in occurrence order (empty for offline
    /// sessions).
    pub online: Vec<OnlineEvent>,
}

impl SessionReport {
    /// Append one query's MNSA outcome.
    pub fn record_query(&mut self, relations: usize, outcome: &MnsaOutcome) {
        self.queries.push(QueryRecord {
            index: self.queries.len(),
            relations,
            optimizer_calls: outcome.optimizer_calls,
            rounds: outcome.rounds,
            created: outcome.created.len(),
            drop_listed: outcome.drop_listed.len(),
            skipped: outcome.skipped.len(),
            final_cost: outcome.final_cost,
            terminated_by: outcome.terminated_by,
        });
    }

    /// The per-query final plan costs, in workload order — the session's
    /// cost trajectory.
    pub fn cost_trajectory(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.final_cost).collect()
    }

    /// Append one online lifecycle event.
    pub fn record_online(&mut self, event: OnlineEvent) {
        self.online.push(event);
    }

    fn termination_str(t: Termination) -> &'static str {
        match t {
            Termination::CostConverged => "converged",
            Termination::NoMoreCandidates => "no_more_candidates",
        }
    }

    /// Render the journal as an aligned text table plus a totals block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>4} {:>6} {:>6} {:>7} {:>7} {:>7} {:>14} terminated_by",
            "query", "rels", "calls", "rounds", "created", "dropped", "skipped", "final_cost"
        );
        for q in &self.queries {
            let _ = writeln!(
                out,
                "{:>5} {:>4} {:>6} {:>6} {:>7} {:>7} {:>7} {:>14.2} {}",
                q.index,
                q.relations,
                q.optimizer_calls,
                q.rounds,
                q.created,
                q.drop_listed,
                q.skipped,
                q.final_cost,
                Self::termination_str(q.terminated_by),
            );
        }
        let _ = writeln!(
            out,
            "totals: {} queries, {} optimizer calls, {} created, {} drop-listed, \
             creation work {:.2}, overhead work {:.2}",
            self.queries.len(),
            self.totals.optimizer_calls,
            self.totals.statistics_created,
            self.totals.statistics_drop_listed,
            self.totals.creation_work,
            self.totals.overhead_work,
        );
        if self.shrink_optimizer_calls > 0 {
            let _ = writeln!(
                out,
                "shrinking set: removed {} in {} optimizer calls",
                self.shrink_removed, self.shrink_optimizer_calls
            );
        }
        if !self.online.is_empty() {
            let _ = writeln!(out, "online events: {}", self.online.len());
            for e in &self.online {
                let _ = match e {
                    OnlineEvent::Refresh {
                        tick,
                        stat,
                        table,
                        work,
                    } => writeln!(
                        out,
                        "  tick {tick:>4} refresh {stat} on {table} (work {work:.2})"
                    ),
                    OnlineEvent::FeedbackRefresh {
                        tick,
                        stat,
                        table,
                        work,
                        observations,
                    } => writeln!(
                        out,
                        "  tick {tick:>4} feedback-refresh {stat} on {table} \
                         ({observations} observations, work {work:.2})"
                    ),
                    OnlineEvent::MonitorEvict { tick, fingerprint } => {
                        writeln!(out, "  tick {tick:>4} evict template {fingerprint:016x}")
                    }
                    OnlineEvent::BudgetExhausted {
                        tick,
                        pending,
                        balance,
                    } => writeln!(
                        out,
                        "  tick {tick:>4} budget exhausted ({pending} pending, balance {balance:.2})"
                    ),
                    OnlineEvent::EpochSwap { tick, generation } => {
                        writeln!(out, "  tick {tick:>4} epoch swap -> generation {generation}")
                    }
                    OnlineEvent::ShardAssigned {
                        tick,
                        shard,
                        table,
                        rows,
                        partitioned,
                    } => writeln!(
                        out,
                        "  tick {tick:>4} shard {shard} owns {table} ({rows} rows{})",
                        if *partitioned { ", partitioned" } else { "" }
                    ),
                };
            }
        }
        out
    }

    /// Render the journal as a JSON object (hand-rolled; the workspace has
    /// no JSON serializer dependency).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n  \"queries\": [\n");
        for (i, q) in self.queries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"index\": {}, \"relations\": {}, \"optimizer_calls\": {}, \
                 \"rounds\": {}, \"created\": {}, \"drop_listed\": {}, \"skipped\": {}, \
                 \"final_cost\": {}, \"terminated_by\": \"{}\"}}",
                q.index,
                q.relations,
                q.optimizer_calls,
                q.rounds,
                q.created,
                q.drop_listed,
                q.skipped,
                num(q.final_cost),
                Self::termination_str(q.terminated_by),
            );
            out.push_str(if i + 1 < self.queries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(
            out,
            "  ],\n  \"totals\": {{\"optimizer_calls\": {}, \"statistics_created\": {}, \
             \"statistics_drop_listed\": {}, \"creation_work\": {}, \"overhead_work\": {}}},\n",
            self.totals.optimizer_calls,
            self.totals.statistics_created,
            self.totals.statistics_drop_listed,
            num(self.totals.creation_work),
            num(self.totals.overhead_work),
        );
        let _ = write!(
            out,
            "  \"shrink_removed\": {},\n  \"shrink_optimizer_calls\": {}",
            self.shrink_removed, self.shrink_optimizer_calls,
        );
        // Conditional section: offline journals (no online events) render
        // exactly as they did before the online lifecycle existed.
        if !self.online.is_empty() {
            out.push_str(",\n  \"online\": [\n");
            for (i, e) in self.online.iter().enumerate() {
                let entry = match e {
                    OnlineEvent::Refresh {
                        tick,
                        stat,
                        table,
                        work,
                    } => format!(
                        "    {{\"event\": \"refresh\", \"tick\": {}, \"stat\": {}, \
                         \"table\": {}, \"work\": {}}}",
                        tick,
                        stat.0,
                        table.0,
                        num(*work)
                    ),
                    OnlineEvent::FeedbackRefresh {
                        tick,
                        stat,
                        table,
                        work,
                        observations,
                    } => format!(
                        "    {{\"event\": \"feedback_refresh\", \"tick\": {}, \"stat\": {}, \
                         \"table\": {}, \"work\": {}, \"observations\": {}}}",
                        tick,
                        stat.0,
                        table.0,
                        num(*work),
                        observations
                    ),
                    OnlineEvent::MonitorEvict { tick, fingerprint } => format!(
                        "    {{\"event\": \"monitor_evict\", \"tick\": {tick}, \
                         \"fingerprint\": {fingerprint}}}"
                    ),
                    OnlineEvent::BudgetExhausted {
                        tick,
                        pending,
                        balance,
                    } => format!(
                        "    {{\"event\": \"budget_exhausted\", \"tick\": {}, \
                         \"pending\": {}, \"balance\": {}}}",
                        tick,
                        pending,
                        num(*balance)
                    ),
                    OnlineEvent::EpochSwap { tick, generation } => format!(
                        "    {{\"event\": \"epoch_swap\", \"tick\": {tick}, \
                         \"generation\": {generation}}}"
                    ),
                    OnlineEvent::ShardAssigned {
                        tick,
                        shard,
                        table,
                        rows,
                        partitioned,
                    } => format!(
                        "    {{\"event\": \"shard_assigned\", \"tick\": {}, \"shard\": {}, \
                         \"table\": {}, \"rows\": {}, \"partitioned\": {}}}",
                        tick, shard, table.0, rows, partitioned
                    ),
                };
                out.push_str(&entry);
                out.push_str(if i + 1 < self.online.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(calls: usize, created: usize, cost: f64) -> MnsaOutcome {
        // Only a test helper: build through public fields via a real run is
        // overkill here, so clone-and-mutate a default-shaped outcome.
        let mut o = MnsaOutcome {
            created: Vec::new(),
            drop_listed: Vec::new(),
            skipped: Vec::new(),
            aged_out: Vec::new(),
            optimizer_calls: calls,
            terminated_by: Termination::CostConverged,
            rounds: created,
            final_cost: cost,
        };
        for i in 0..created {
            o.created.push(stats::StatId(i as u32));
        }
        o
    }

    #[test]
    fn journal_accumulates_and_renders() {
        let mut report = SessionReport::default();
        report.record_query(2, &outcome(5, 2, 100.0));
        report.record_query(3, &outcome(3, 0, 40.5));
        report.totals.optimizer_calls = 8;
        report.totals.statistics_created = 2;

        assert_eq!(report.queries.len(), 2);
        assert_eq!(report.queries[1].index, 1);
        assert_eq!(report.cost_trajectory(), vec![100.0, 40.5]);

        let text = report.render_text();
        assert!(text.contains("converged"));
        assert!(text.contains("totals: 2 queries, 8 optimizer calls"));

        let json = report.to_json();
        let parsed = obsv::json::parse(&json).expect("journal JSON parses");
        let queries = parsed.get("queries").and_then(|q| q.as_array()).unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(
            queries[0].get("final_cost").and_then(|v| v.as_f64()),
            Some(100.0)
        );
        assert_eq!(
            parsed
                .get("totals")
                .and_then(|t| t.get("optimizer_calls"))
                .and_then(|v| v.as_f64()),
            Some(8.0)
        );
    }

    #[test]
    fn online_events_render_only_when_present() {
        let mut offline = SessionReport::default();
        offline.record_query(2, &outcome(5, 2, 100.0));
        let offline_json = offline.to_json();
        assert!(!offline_json.contains("\"online\""));
        assert!(obsv::json::parse(&offline_json)
            .expect("parses")
            .get("online")
            .is_none());

        let mut online = offline.clone();
        online.record_online(OnlineEvent::Refresh {
            tick: 3,
            stat: stats::StatId(7),
            table: TableId(1),
            work: 42.5,
        });
        online.record_online(OnlineEvent::MonitorEvict {
            tick: 4,
            fingerprint: 0xdead_beef,
        });
        online.record_online(OnlineEvent::BudgetExhausted {
            tick: 5,
            pending: 2,
            balance: -10.0,
        });
        online.record_online(OnlineEvent::EpochSwap {
            tick: 5,
            generation: 2,
        });
        online.record_online(OnlineEvent::ShardAssigned {
            tick: 0,
            shard: 1,
            table: TableId(3),
            rows: 1200,
            partitioned: true,
        });
        let text = online.render_text();
        assert!(text.contains("online events: 5"));
        assert!(text.contains("epoch swap -> generation 2"));
        assert!(text.contains("shard 1 owns T3 (1200 rows, partitioned)"));

        let parsed = obsv::json::parse(&online.to_json()).expect("parses");
        let events = parsed.get("online").and_then(|o| o.as_array()).unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(
            events[4].get("event").and_then(|v| v.as_str()),
            Some("shard_assigned")
        );
        assert_eq!(events[4].get("rows").and_then(|v| v.as_f64()), Some(1200.0));
        assert_eq!(
            events[0].get("event").and_then(|v| v.as_str()),
            Some("refresh")
        );
        assert_eq!(events[0].get("work").and_then(|v| v.as_f64()), Some(42.5));
    }

    #[test]
    fn empty_session_is_valid_json() {
        let report = SessionReport::default();
        let parsed = obsv::json::parse(&report.to_json()).expect("parses");
        assert_eq!(
            parsed
                .get("queries")
                .and_then(|q| q.as_array())
                .map(|a| a.len()),
            Some(0)
        );
    }
}
