//! Fault injection for the tuning pipeline.
//!
//! The §4–§6 algorithms are supposed to be total: any database + catalog
//! state, however degenerate, must produce either a valid tuning outcome or
//! a typed error — never a panic. This module provides *programmable
//! failure points* that corrupt a live `Database`/`StatsCatalog` pair in the
//! ways a production system actually degrades:
//!
//! * [`Fault::TruncateTable`] / [`Fault::TruncateAllTables`] — empty tables
//!   (histograms over zero rows, zero-selectivity scans);
//! * [`Fault::DropAllStatistics`] — every built statistic physically dropped
//!   mid-tune, as a concurrent DBA or maintenance pass would;
//! * [`Fault::DegenerateSampler`] — statistics builds sample (effectively)
//!   zero rows, the §2 sampling failure mode;
//! * [`Fault::ZeroBucketHistograms`] — a zero bucket budget, the most
//!   degenerate histogram shape.
//!
//! `tests/fault_injection.rs` drives every tuning entry point through
//! random schedules of these faults and asserts the panic-free contract:
//! selectivities stay in `[0, 1]`, costs stay finite, and every failure is
//! a [`TuneError`](crate::TuneError) (or a valid report), never an unwind.

use stats::{BuildOptions, SampleSpec, StatId, StatsCatalog};
use storage::{Database, TableId};

/// One injectable failure point.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Delete every row of one table (the table itself survives, empty).
    TruncateTable(TableId),
    /// Delete every row of every table.
    TruncateAllTables,
    /// Physically drop every built statistic — active and drop-listed — as
    /// if a concurrent maintenance pass removed them mid-tune.
    DropAllStatistics,
    /// Future statistics builds draw (effectively) zero sample rows: a
    /// literal degenerate [`SampleSpec`] that the sampler clamps to its
    /// one-row floor.
    DegenerateSampler,
    /// Future statistics builds get a zero bucket budget.
    ZeroBucketHistograms,
}

/// A schedule of faults applied to a live database + catalog.
///
/// ```
/// use autostats::{Fault, FaultPlan};
/// use stats::StatsCatalog;
/// use storage::Database;
///
/// let mut db = Database::new();
/// let mut catalog = StatsCatalog::new();
/// FaultPlan::new()
///     .with(Fault::TruncateAllTables)
///     .with(Fault::ZeroBucketHistograms)
///     .inject(&mut db, &mut catalog);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Append one fault to the schedule (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The scheduled faults, in injection order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Apply every scheduled fault, in order, to `db` and `catalog`.
    /// Returns the number of faults that actually changed something (a
    /// truncate of an already-empty or unknown table counts as a no-op).
    pub fn inject(&self, db: &mut Database, catalog: &mut StatsCatalog) -> usize {
        let mut applied = 0;
        for fault in &self.faults {
            if inject_one(fault, db, catalog) {
                applied += 1;
            }
        }
        applied
    }
}

fn inject_one(fault: &Fault, db: &mut Database, catalog: &mut StatsCatalog) -> bool {
    match fault {
        Fault::TruncateTable(id) => truncate(db, *id),
        Fault::TruncateAllTables => {
            let ids: Vec<TableId> = db.table_ids().collect();
            let mut any = false;
            for id in ids {
                any |= truncate(db, id);
            }
            any
        }
        Fault::DropAllStatistics => {
            let built: Vec<StatId> = catalog
                .active_ids()
                .into_iter()
                .chain(catalog.drop_list().collect::<Vec<_>>())
                .collect();
            let mut any = false;
            for id in built {
                any |= catalog.physically_drop(id);
            }
            any
        }
        Fault::DegenerateSampler => {
            let options = BuildOptions {
                sample: SampleSpec::Fraction {
                    fraction: 1e-12,
                    min_rows: 0,
                },
                ..catalog.build_options().clone()
            };
            catalog.set_build_options(options);
            true
        }
        Fault::ZeroBucketHistograms => {
            let options = BuildOptions {
                max_buckets: 0,
                ..catalog.build_options().clone()
            };
            catalog.set_build_options(options);
            true
        }
    }
}

/// Delete every row of `id`; false when the table is unknown or already
/// empty.
fn truncate(db: &mut Database, id: TableId) -> bool {
    let Ok(table) = db.try_table_mut(id) else {
        return false;
    };
    let rows: Vec<usize> = (0..table.row_count()).collect();
    if rows.is_empty() {
        return false;
    }
    table.delete_rows(rows);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::StatDescriptor;
    use storage::{ColumnDef, DataType, Schema, Value};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..100i64 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i % 7)])
                .unwrap();
        }
        (db, t)
    }

    #[test]
    fn truncate_empties_the_table_once() {
        let (mut db, t) = setup();
        let mut catalog = StatsCatalog::new();
        let plan = FaultPlan::new().with(Fault::TruncateTable(t));
        assert_eq!(plan.inject(&mut db, &mut catalog), 1);
        assert_eq!(db.table(t).row_count(), 0);
        // Second injection is a no-op: the table is already empty.
        assert_eq!(plan.inject(&mut db, &mut catalog), 0);
    }

    #[test]
    fn unknown_table_is_a_noop_not_a_panic() {
        let (mut db, _) = setup();
        let mut catalog = StatsCatalog::new();
        let plan = FaultPlan::new().with(Fault::TruncateTable(TableId(999)));
        assert_eq!(plan.inject(&mut db, &mut catalog), 0);
    }

    #[test]
    fn drop_all_statistics_clears_active_and_droplisted() {
        let (mut db, t) = setup();
        let mut catalog = StatsCatalog::new();
        let a = catalog
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        catalog
            .create_statistic(&db, StatDescriptor::single(t, 1))
            .unwrap();
        catalog.move_to_drop_list(a);
        assert_eq!(
            FaultPlan::new()
                .with(Fault::DropAllStatistics)
                .inject(&mut db, &mut catalog),
            1
        );
        assert_eq!(catalog.total_count(), 0);
    }

    #[test]
    fn sampler_and_bucket_faults_still_build_valid_statistics() {
        let (mut db, t) = setup();
        let mut catalog = StatsCatalog::new();
        FaultPlan::new()
            .with(Fault::DegenerateSampler)
            .with(Fault::ZeroBucketHistograms)
            .inject(&mut db, &mut catalog);
        // Builds under degenerate options must still yield a statistic whose
        // estimates are sane, not a panic.
        let id = catalog
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let s = catalog.statistic(id).unwrap();
        let sel = s.histogram.selectivity_le(&Value::Int(50));
        assert!((0.0..=1.0).contains(&sel), "sel={sel}");
    }
}
