//! Consecutive same-table grouping for statistic creations.
//!
//! The tuning algorithms (MNSA's small-table pre-creation and round groups,
//! the `CreateAll*` policies, parallel replay) all create runs of statistics
//! whose descriptors repeatedly target the same table. Routing each
//! consecutive run through [`StatsCatalog::create_statistics_batch`] lets the
//! catalog build the run from one shared table scan while preserving the
//! exact id-allocation order (and therefore the exact catalog state) of a
//! serial `create_statistic` loop — only consecutive runs are grouped, so
//! creations never reorder across tables.

use stats::{StatDescriptor, StatId, StatsCatalog, StatsError};
use storage::Database;

/// Create `descriptors` in order, batching consecutive same-table runs
/// through the catalog's shared-scan API. Returns exactly the ids (and
/// leaves exactly the catalog state) of calling
/// [`StatsCatalog::create_statistic`] once per descriptor in order.
pub(crate) fn create_statistics_grouped(
    catalog: &mut StatsCatalog,
    db: &Database,
    descriptors: &[StatDescriptor],
) -> Result<Vec<StatId>, StatsError> {
    let mut ids = Vec::with_capacity(descriptors.len());
    let mut start = 0;
    while start < descriptors.len() {
        let table = descriptors[start].table;
        let mut end = start + 1;
        while end < descriptors.len() && descriptors[end].table == table {
            end += 1;
        }
        ids.extend(catalog.create_statistics_batch(db, table, &descriptors[start..end])?);
        start = end;
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{ColumnDef, DataType, Schema, Value};

    #[test]
    fn grouped_creation_matches_serial_across_tables() {
        let mut db = Database::new();
        let mut tables = Vec::new();
        for name in ["a", "b"] {
            let t = db
                .create_table(
                    name,
                    Schema::new(vec![
                        ColumnDef::new("x", DataType::Int),
                        ColumnDef::new("y", DataType::Int),
                    ]),
                )
                .unwrap();
            for i in 0..500i64 {
                db.table_mut(t)
                    .insert(vec![Value::Int(i % 13), Value::Int(i % 5)])
                    .unwrap();
            }
            tables.push(t);
        }
        // Interleaved tables: runs are (a, a), (b), (a), (b, b).
        let descs = vec![
            StatDescriptor::single(tables[0], 0),
            StatDescriptor::single(tables[0], 1),
            StatDescriptor::single(tables[1], 0),
            StatDescriptor::multi(tables[0], vec![0, 1]),
            StatDescriptor::single(tables[1], 1),
            StatDescriptor::multi(tables[1], vec![1, 0]),
        ];
        let mut serial = StatsCatalog::new();
        let serial_ids: Vec<StatId> = descs
            .iter()
            .map(|d| serial.create_statistic(&db, d.clone()).unwrap())
            .collect();
        let mut grouped = StatsCatalog::new();
        let grouped_ids = create_statistics_grouped(&mut grouped, &db, &descs).unwrap();
        assert_eq!(grouped_ids, serial_ids);
        assert_eq!(grouped.snapshot(), serial.snapshot());
    }
}
