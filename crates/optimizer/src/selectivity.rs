//! Selectivity estimation: the statistics consumer.
//!
//! For each selectivity variable of a bound query (§4.1: one per selection
//! predicate, one per join edge, one for GROUP BY) this module produces a
//! value in `[0, 1]` and records *how* it was produced:
//!
//! * `Injected` — the caller forced the value (the §7.2 server extension that
//!   MNSA's `P_low`/`P_high` construction requires);
//! * `Statistics` — estimated from a visible histogram / density;
//! * `Magic` — no applicable statistics; the class default was used.
//!
//! The `Magic` set is exactly the `{s_1 … s_k}` of step (a) in §4.1.

use crate::magic::MagicNumbers;
use query::{BoundSelect, CmpOp, JoinEdge, PredClass, PredOp, PredicateId, SelectionPredicate};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use stats::{StatId, StatsView};
use storage::Database;

/// Floor applied to statistics-derived selectivities. A histogram can
/// legitimately estimate zero (no bucket contains the constant), but letting
/// cardinalities collapse to exactly 0 makes every plan cost-equivalent and
/// the join enumeration degenerate; real optimizers floor at "about one
/// row" for the same reason. Injected values are NOT floored — MNSA's ε
/// probe must reach the optimizer exactly.
const MIN_STATS_SELECTIVITY: f64 = 1e-5;

/// Clamp a selectivity into [0, 1], rejecting NaN (mapped to 0). Every value
/// entering a profile passes through here so the cost model downstream can
/// assume finite inputs.
fn clamp01(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

/// How one selectivity value was obtained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectivitySource {
    Injected,
    /// Statistics used, with the ids involved.
    Statistics(Vec<StatId>),
    Magic(PredClass),
}

/// The estimated selectivity of every variable of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectivityProfile {
    values: FxHashMap<PredicateId, f64>,
    sources: FxHashMap<PredicateId, SelectivitySource>,
}

impl SelectivityProfile {
    /// Selectivity of one variable (1.0 for an id the query does not have —
    /// harmless identity for cardinality products).
    pub fn value(&self, id: PredicateId) -> f64 {
        self.values.get(&id).copied().unwrap_or(1.0)
    }

    pub fn source(&self, id: PredicateId) -> Option<&SelectivitySource> {
        self.sources.get(&id)
    }

    /// The selectivity variables that fell back to magic numbers — the
    /// `{s_1, …, s_k}` set MNSA perturbs.
    pub fn magic_variables(&self) -> Vec<PredicateId> {
        let mut v: Vec<PredicateId> = self
            .sources
            .iter()
            .filter(|(_, s)| matches!(s, SelectivitySource::Magic(_)))
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Statistics consulted anywhere in the profile.
    pub fn statistics_used(&self) -> Vec<StatId> {
        let mut out = Vec::new();
        for s in self.sources.values() {
            if let SelectivitySource::Statistics(ids) = s {
                for id in ids {
                    if !out.contains(id) {
                        out.push(*id);
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Canonical content hash of the profile: every `(variable, value,
    /// source)` triple in sorted variable order, with f64 values hashed via
    /// their bit patterns. Two profiles with equal fingerprints drive the
    /// optimizer to the same plan for the same query and table metadata —
    /// this is the *statistics-subset signature* of the optimize cache.
    pub fn fingerprint(&self) -> u64 {
        let mut ids: Vec<PredicateId> = self.values.keys().copied().collect();
        ids.sort();
        let mut h = crate::cache::Fnv::new();
        for id in ids {
            match id {
                PredicateId::Selection(i) => h.write(0).write(i as u64),
                PredicateId::JoinEdge(i) => h.write(1).write(i as u64),
                PredicateId::GroupBy => h.write(2),
            };
            h.write(self.values[&id].to_bits());
            match &self.sources[&id] {
                SelectivitySource::Injected => {
                    h.write(3);
                }
                SelectivitySource::Statistics(stat_ids) => {
                    h.write(4).write(stat_ids.len() as u64);
                    for s in stat_ids {
                        h.write(s.0 as u64);
                    }
                }
                SelectivitySource::Magic(class) => {
                    h.write(5).write(*class as u64);
                }
            }
        }
        h.finish()
    }

    /// Combined selectivity of all selection predicates on relation `rel`
    /// (independence assumption across conjuncts).
    pub fn relation_filter(&self, query: &BoundSelect, rel: usize) -> f64 {
        query
            .selections_on(rel)
            .map(|(i, _)| self.value(PredicateId::Selection(i)))
            .product()
    }
}

/// Estimate one selection predicate from the statistics view. Returns
/// `(selectivity, ids used)` or `None` when no statistics apply.
fn selection_from_stats(
    view: &StatsView<'_>,
    query: &BoundSelect,
    pred: &SelectionPredicate,
) -> Option<(f64, Vec<StatId>)> {
    let table = query.table_of(pred.column.relation);
    let stat = view.histogram_for(table, pred.column.column)?;
    let h = &stat.histogram;
    let non_null = 1.0 - stat.null_fraction;
    let sel = match &pred.op {
        PredOp::Cmp(CmpOp::Eq, v) => h.selectivity_eq(v),
        PredOp::Cmp(CmpOp::Ne, v) => h.selectivity_ne(v),
        PredOp::Cmp(CmpOp::Lt, v) => h.selectivity_lt(v),
        PredOp::Cmp(CmpOp::Le, v) => h.selectivity_le(v),
        PredOp::Cmp(CmpOp::Gt, v) => h.selectivity_gt(v),
        PredOp::Cmp(CmpOp::Ge, v) => h.selectivity_ge(v),
        PredOp::Between(lo, hi) => h.selectivity_between(lo, hi),
    };
    Some((clamp01(sel * non_null), vec![stat.id]))
}

/// The inclusive numeric range a predicate restricts its column to, or
/// `None` for predicates a 2-D histogram cannot serve (`<>`).
fn pred_range(op: &PredOp) -> Option<(Option<f64>, Option<f64>)> {
    match op {
        PredOp::Cmp(CmpOp::Eq, v) => {
            let k = v.numeric_key();
            Some((Some(k), Some(k)))
        }
        PredOp::Cmp(CmpOp::Lt | CmpOp::Le, v) => Some((None, Some(v.numeric_key()))),
        PredOp::Cmp(CmpOp::Gt | CmpOp::Ge, v) => Some((Some(v.numeric_key()), None)),
        PredOp::Cmp(CmpOp::Ne, _) => None,
        PredOp::Between(l, h) => Some((Some(l.numeric_key()), Some(h.numeric_key()))),
    }
}

/// Joint-histogram refinement (the paper's [13] — estimation *without* the
/// attribute-value-independence assumption). When two statistics-estimated
/// predicates of the same relation touch a column pair covered by a Phased
/// 2-D histogram, the second predicate's marginal selectivity is replaced
/// with the conditional `joint / marginal`, so the product the optimizer
/// forms equals the joint estimate. Injected and magic variables are left
/// untouched — MNSA's probes must pass through exactly.
fn apply_joint_refinement(
    view: &StatsView<'_>,
    query: &BoundSelect,
    values: &mut FxHashMap<PredicateId, f64>,
    sources: &mut FxHashMap<PredicateId, SelectivitySource>,
) {
    let n = query.selections.len();
    let mut consumed = vec![false; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if consumed[i] || consumed[j] {
                continue;
            }
            let (pi, pj) = (&query.selections[i], &query.selections[j]);
            if pi.column.relation != pj.column.relation || pi.column.column == pj.column.column {
                continue;
            }
            let (idi, idj) = (PredicateId::Selection(i), PredicateId::Selection(j));
            let stats_sourced = |id: &PredicateId| {
                matches!(sources.get(id), Some(SelectivitySource::Statistics(_)))
            };
            if !stats_sourced(&idi) || !stats_sourced(&idj) {
                continue;
            }
            let (Some(ri), Some(rj)) = (pred_range(&pi.op), pred_range(&pj.op)) else {
                continue;
            };
            let table = query.table_of(pi.column.relation);
            let Some((stat, flipped)) = view.joint_for(table, pi.column.column, pj.column.column)
            else {
                continue;
            };
            // `joint_for` only returns statistics carrying a joint histogram;
            // tolerate a violation instead of trusting it with a panic.
            let Some(joint_hist) = stat.joint.as_ref() else {
                continue;
            };
            let (xr, yr) = if flipped { (rj, ri) } else { (ri, rj) };
            let joint = joint_hist.selectivity(&stats::RangeQuery {
                x_lo: xr.0,
                x_hi: xr.1,
                y_lo: yr.0,
                y_hi: yr.1,
            });
            let marginal_i = values.get(&idi).copied().unwrap_or(1.0);
            if marginal_i > 0.0 {
                values.insert(idj, clamp01(joint / marginal_i));
                if let Some(SelectivitySource::Statistics(ids)) = sources.get_mut(&idj) {
                    if !ids.contains(&stat.id) {
                        ids.push(stat.id);
                    }
                }
                consumed[i] = true;
                consumed[j] = true;
            }
        }
    }
}

/// Estimate one join edge. Statistics must be available on **both** sides
/// (join statistics are useful in pairs, §4.2).
///
/// Single-column edges with histograms on both sides use the histogram
/// dot-product `Σ_v p_l(v)·p_r(v)`, which models skewed-key fan-out;
/// multi-column edges fall back to the density-based
/// `1 / max(NDV_left, NDV_right)` over the joined column sets.
fn join_from_stats(
    view: &StatsView<'_>,
    query: &BoundSelect,
    edge: &JoinEdge,
) -> Option<(f64, Vec<StatId>)> {
    let lt = query.table_of(edge.left_rel);
    let rt = query.table_of(edge.right_rel);
    let lcols: Vec<usize> = edge.pairs.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = edge.pairs.iter().map(|&(_, r)| r).collect();

    if edge.pairs.len() == 1 {
        let ls = view.histogram_for(lt, lcols[0])?;
        let rs = view.histogram_for(rt, rcols[0])?;
        let sel = stats::join_selectivity(&ls.histogram, &rs.histogram)
            * (1.0 - ls.null_fraction)
            * (1.0 - rs.null_fraction);
        return Some((clamp01(sel), vec![ls.id, rs.id]));
    }

    let side = |table, cols: &[usize]| -> Option<(f64, StatId)> {
        let (s, density) = view.density_for_set(table, cols)?;
        Some((if density > 0.0 { 1.0 / density } else { 0.0 }, s.id))
    };
    let (lndv, lid) = side(lt, &lcols)?;
    let (rndv, rid) = side(rt, &rcols)?;
    let denom = lndv.max(rndv).max(1.0);
    Some((clamp01(1.0 / denom), vec![lid, rid]))
}

/// Estimate the GROUP BY distinct fraction: estimated distinct group count
/// divided by the aggregate input cardinality (capped at 1).
///
/// Statistics must cover **every** grouping column (via a single-column NDV
/// or a multi-column density per table); otherwise the class magic number is
/// used, matching §4.1's aggregation extension.
fn group_by_from_stats(
    view: &StatsView<'_>,
    query: &BoundSelect,
    input_rows: f64,
) -> Option<(f64, Vec<StatId>)> {
    if query.group_by.is_empty() {
        return None;
    }
    // Group grouping columns per relation; per relation prefer one
    // multi-column density, else multiply single-column NDVs. Relations are
    // visited in sorted order (BTreeMap): the f64 product and the statistic
    // id list must not depend on hash-map iteration order, which differs
    // across threads and would break bit-identical parallel tuning.
    let mut per_rel: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for g in &query.group_by {
        per_rel.entry(g.relation).or_default().push(g.column);
    }
    let mut distinct = 1.0f64;
    let mut ids = Vec::new();
    for (rel, cols) in per_rel {
        let table = query.table_of(rel);
        if cols.len() > 1 {
            if let Some((s, density)) = view.density_for_set(table, &cols) {
                distinct *= if density > 0.0 { 1.0 / density } else { 1.0 };
                ids.push(s.id);
                continue;
            }
        }
        for &c in &cols {
            let s = view.histogram_for(table, c)?;
            distinct *= s.leading_ndv().max(1.0);
            ids.push(s.id);
        }
    }
    let fraction = clamp01(distinct / input_rows.max(1.0));
    Some((fraction, ids))
}

/// Build the full selectivity profile for a query.
///
/// `injected` overrides statistics and magic numbers for the given variables
/// (§7.2's modified selectivity-estimation module). `input_rows_for_agg` is
/// the estimated aggregate input cardinality, needed to convert a distinct
/// count into a fraction.
pub fn build_profile(
    db: &Database,
    view: &StatsView<'_>,
    query: &BoundSelect,
    magic: &MagicNumbers,
    injected: &FxHashMap<PredicateId, f64>,
) -> SelectivityProfile {
    let mut values = FxHashMap::default();
    let mut sources = FxHashMap::default();

    for (i, pred) in query.selections.iter().enumerate() {
        let id = PredicateId::Selection(i);
        if let Some(&v) = injected.get(&id) {
            values.insert(id, clamp01(v));
            sources.insert(id, SelectivitySource::Injected);
        } else if let Some((v, ids)) = selection_from_stats(view, query, pred) {
            values.insert(id, v.max(MIN_STATS_SELECTIVITY));
            sources.insert(id, SelectivitySource::Statistics(ids));
        } else {
            let class = pred.op.class();
            values.insert(id, magic.for_class(class));
            sources.insert(id, SelectivitySource::Magic(class));
        }
    }

    // Joint 2-D histograms refine pairs of selection estimates, when built.
    apply_joint_refinement(view, query, &mut values, &mut sources);

    for (i, edge) in query.join_edges.iter().enumerate() {
        let id = PredicateId::JoinEdge(i);
        if let Some(&v) = injected.get(&id) {
            values.insert(id, clamp01(v));
            sources.insert(id, SelectivitySource::Injected);
        } else if let Some((v, ids)) = join_from_stats(view, query, edge) {
            values.insert(id, v.max(MIN_STATS_SELECTIVITY / 10.0));
            sources.insert(id, SelectivitySource::Statistics(ids));
        } else {
            values.insert(id, magic.for_class(PredClass::Join));
            sources.insert(id, SelectivitySource::Magic(PredClass::Join));
        }
    }

    if !query.group_by.is_empty() {
        let id = PredicateId::GroupBy;
        // Aggregate input cardinality under the values chosen so far.
        let mut input_rows = 1.0f64;
        for (rel, (tid, _)) in query.relations.iter().enumerate() {
            // A stale table id contributes no rows here; the planner proper
            // reports it as a typed error.
            let base = db.try_table(*tid).map_or(0.0, |t| t.row_count() as f64);
            let filter: f64 = query
                .selections_on(rel)
                .map(|(i, _)| {
                    values
                        .get(&PredicateId::Selection(i))
                        .copied()
                        .unwrap_or(1.0)
                })
                .product();
            input_rows *= base * filter;
        }
        for (i, _) in query.join_edges.iter().enumerate() {
            input_rows *= values
                .get(&PredicateId::JoinEdge(i))
                .copied()
                .unwrap_or(1.0);
        }
        if let Some(&v) = injected.get(&id) {
            values.insert(id, clamp01(v));
            sources.insert(id, SelectivitySource::Injected);
        } else if let Some((v, ids)) = group_by_from_stats(view, query, input_rows) {
            values.insert(id, v);
            sources.insert(id, SelectivitySource::Statistics(ids));
        } else {
            values.insert(id, magic.for_class(PredClass::GroupBy));
            sources.insert(id, SelectivitySource::Magic(PredClass::GroupBy));
        }
    }

    SelectivityProfile { values, sources }
}
