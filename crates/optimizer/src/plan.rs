//! Physical plan trees.
//!
//! A plan is an operator tree annotated with estimated output cardinality and
//! estimated subtree cost. **Execution-tree equivalence** (§3.2 of the
//! paper) is structural equality of operator trees *ignoring the estimates*
//! — two optimizations that choose the same operators, access paths, join
//! order and join algorithms produce equal plans even if their cardinality
//! estimates differ.

use query::BoundColumn;
use serde::{Deserialize, Serialize};
use std::fmt;
use storage::TableId;

/// Physical operators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operator {
    /// Full scan of relation ordinal `rel`, applying the given selection
    /// predicates (indices into `BoundSelect::selections`).
    SeqScan {
        rel: usize,
        table: TableId,
        preds: Vec<usize>,
    },
    /// Index seek on `index` (name) using `seek_preds` on the leading key
    /// column, applying `residual` predicates afterwards.
    IndexScan {
        rel: usize,
        table: TableId,
        index: String,
        seek_preds: Vec<usize>,
        residual: Vec<usize>,
    },
    /// Hash join on the given join-edge ordinals (left child probes, right
    /// child builds).
    HashJoin { edges: Vec<usize> },
    /// Sort-merge join on the given join-edge ordinals (sorts included).
    MergeJoin { edges: Vec<usize> },
    /// Nested-loop join; `edges` may be empty (cartesian product).
    NestedLoopJoin { edges: Vec<usize> },
    /// Index nested-loop join: for each outer tuple, seek `index` on the
    /// inner relation by the join key, then apply `inner_preds`. Has a
    /// single child (the outer input); the inner side is accessed through
    /// the index, not scanned. This is the selectivity-sensitive plan whose
    /// choice hinges on accurate cardinality estimates.
    IndexNLJoin {
        edges: Vec<usize>,
        inner_rel: usize,
        inner_table: TableId,
        index: String,
        inner_preds: Vec<usize>,
    },
    /// Hash aggregation over `group` columns.
    HashAggregate { group: Vec<BoundColumn> },
    /// Final sort for ORDER BY, `(key column, descending)` per key. Sort
    /// keys are not statistics-relevant (the paper's footnote 1).
    Sort { keys: Vec<(BoundColumn, bool)> },
}

impl Operator {
    pub fn name(&self) -> &'static str {
        match self {
            Operator::SeqScan { .. } => "SeqScan",
            Operator::IndexScan { .. } => "IndexScan",
            Operator::HashJoin { .. } => "HashJoin",
            Operator::MergeJoin { .. } => "MergeJoin",
            Operator::NestedLoopJoin { .. } => "NestedLoopJoin",
            Operator::IndexNLJoin { .. } => "IndexNLJoin",
            Operator::HashAggregate { .. } => "HashAggregate",
            Operator::Sort { .. } => "Sort",
        }
    }

    pub fn is_join(&self) -> bool {
        matches!(
            self,
            Operator::HashJoin { .. }
                | Operator::MergeJoin { .. }
                | Operator::NestedLoopJoin { .. }
                | Operator::IndexNLJoin { .. }
        )
    }

    pub fn is_scan(&self) -> bool {
        matches!(self, Operator::SeqScan { .. } | Operator::IndexScan { .. })
    }
}

/// A node of a physical plan tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanNode {
    pub op: Operator,
    pub children: Vec<PlanNode>,
    /// Estimated output cardinality.
    pub est_rows: f64,
    /// Estimated cost of the whole subtree rooted here.
    pub est_cost: f64,
}

impl PlanNode {
    pub fn leaf(op: Operator, est_rows: f64, est_cost: f64) -> Self {
        PlanNode {
            op,
            children: Vec::new(),
            est_rows,
            est_cost,
        }
    }

    /// Cost attributable to this node alone: subtree cost minus the subtree
    /// costs of the children — §4.2's "cost(plan subtree rooted at n) −
    /// Σ cost(Children(n))", the ranking key of `FindNextStatToBuild`.
    pub fn own_cost(&self) -> f64 {
        let children: f64 = self.children.iter().map(|c| c.est_cost).sum();
        (self.est_cost - children).max(0.0)
    }

    /// Structural equality ignoring cardinality/cost annotations —
    /// *Execution-Tree equivalence*.
    pub fn same_tree(&self, other: &PlanNode) -> bool {
        self.op == other.op
            && self.children.len() == other.children.len()
            && self
                .children
                .iter()
                .zip(&other.children)
                .all(|(a, b)| a.same_tree(b))
    }

    /// Stable fingerprint of the operator tree *ignoring the estimates* —
    /// the hash companion of [`same_tree`](Self::same_tree): two plans are
    /// execution-tree equivalent iff their structural fingerprints collide
    /// (modulo the usual 64-bit hash caveat). Lets callers memoize
    /// plan-determined quantities (e.g. deterministic execution work) across
    /// optimizations whose estimates differ but whose chosen trees agree.
    pub fn structural_fingerprint(&self) -> u64 {
        let mut h = crate::cache::Fnv::new();
        self.walk(&mut |node| {
            // `Operator`'s Debug output is structural only (no floats), so
            // it is a stable encoding of everything execution depends on.
            h.write_bytes(format!("{:?}", node.op).as_bytes())
                .write(node.children.len() as u64);
        });
        h.finish()
    }

    /// Depth-first pre-order traversal.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a PlanNode)) {
        visit(self);
        for c in &self.children {
            c.walk(visit);
        }
    }

    /// All nodes, pre-order.
    pub fn nodes(&self) -> Vec<&PlanNode> {
        let mut out = Vec::new();
        self.walk(&mut |n| out.push(n));
        out
    }

    /// A short stable signature of the tree structure (for logs and maps).
    pub fn signature(&self) -> String {
        let mut s = String::new();
        self.write_signature(&mut s);
        s
    }

    fn write_signature(&self, out: &mut String) {
        use std::fmt::Write;
        match &self.op {
            Operator::SeqScan { rel, preds, .. } => {
                let _ = write!(out, "seq({rel};{preds:?})");
            }
            Operator::IndexScan {
                rel,
                index,
                seek_preds,
                residual,
                ..
            } => {
                let _ = write!(out, "idx({rel};{index};{seek_preds:?};{residual:?})");
            }
            Operator::HashJoin { edges } => {
                let _ = write!(out, "hj{edges:?}");
            }
            Operator::MergeJoin { edges } => {
                let _ = write!(out, "mj{edges:?}");
            }
            Operator::NestedLoopJoin { edges } => {
                let _ = write!(out, "nl{edges:?}");
            }
            Operator::IndexNLJoin {
                edges,
                inner_rel,
                index,
                inner_preds,
                ..
            } => {
                let _ = write!(out, "inl({inner_rel};{index};{edges:?};{inner_preds:?})");
            }
            Operator::HashAggregate { group } => {
                let _ = write!(out, "agg(");
                for g in group {
                    let _ = write!(out, "{}:{},", g.relation, g.column);
                }
                let _ = write!(out, ")");
            }
            Operator::Sort { keys } => {
                let _ = write!(out, "sort(");
                for (k, d) in keys {
                    let _ = write!(
                        out,
                        "{}:{}{},",
                        k.relation,
                        k.column,
                        if *d { "v" } else { "^" }
                    );
                }
                let _ = write!(out, ")");
            }
        }
        if !self.children.is_empty() {
            out.push('[');
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.write_signature(out);
            }
            out.push(']');
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        writeln!(
            f,
            "{:indent$}{} (rows={:.1}, cost={:.1})",
            "",
            self.describe(),
            self.est_rows,
            self.est_cost,
            indent = indent * 2
        )?;
        for c in &self.children {
            c.fmt_indented(f, indent + 1)?;
        }
        Ok(())
    }

    fn describe(&self) -> String {
        match &self.op {
            Operator::SeqScan { rel, preds, .. } => {
                format!("SeqScan rel#{rel} preds={preds:?}")
            }
            Operator::IndexScan {
                rel,
                index,
                seek_preds,
                residual,
                ..
            } => format!("IndexScan rel#{rel} via {index} seek={seek_preds:?} residual={residual:?}"),
            Operator::HashJoin { edges } => format!("HashJoin edges={edges:?}"),
            Operator::MergeJoin { edges } => format!("MergeJoin edges={edges:?}"),
            Operator::NestedLoopJoin { edges } => format!("NestedLoopJoin edges={edges:?}"),
            Operator::IndexNLJoin {
                edges,
                inner_rel,
                index,
                inner_preds,
                ..
            } => format!(
                "IndexNLJoin inner rel#{inner_rel} via {index} edges={edges:?} inner_preds={inner_preds:?}"
            ),
            Operator::HashAggregate { group } => format!("HashAggregate groups={}", group.len()),
            Operator::Sort { keys } => format!("Sort keys={}", keys.len()),
        }
    }
}

impl fmt::Display for PlanNode {
    /// EXPLAIN-style indented rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: usize, cost: f64) -> PlanNode {
        PlanNode::leaf(
            Operator::SeqScan {
                rel,
                table: TableId(rel as u32),
                preds: vec![],
            },
            100.0,
            cost,
        )
    }

    fn join(l: PlanNode, r: PlanNode, cost: f64) -> PlanNode {
        PlanNode {
            op: Operator::HashJoin { edges: vec![0] },
            est_rows: 50.0,
            est_cost: cost,
            children: vec![l, r],
        }
    }

    #[test]
    fn own_cost_subtracts_children() {
        let p = join(scan(0, 10.0), scan(1, 20.0), 100.0);
        assert_eq!(p.own_cost(), 70.0);
        assert_eq!(p.children[0].own_cost(), 10.0);
    }

    #[test]
    fn same_tree_ignores_estimates() {
        let mut a = join(scan(0, 10.0), scan(1, 20.0), 100.0);
        let b = join(scan(0, 99.0), scan(1, 1.0), 5.0);
        assert!(a.same_tree(&b));
        a.children.swap(0, 1);
        assert!(!a.same_tree(&b), "join order matters");
    }

    #[test]
    fn structural_fingerprint_tracks_same_tree() {
        let mut a = join(scan(0, 10.0), scan(1, 20.0), 100.0);
        let b = join(scan(0, 99.0), scan(1, 1.0), 5.0);
        assert_eq!(
            a.structural_fingerprint(),
            b.structural_fingerprint(),
            "estimates must not affect the fingerprint"
        );
        a.children.swap(0, 1);
        assert_ne!(a.structural_fingerprint(), b.structural_fingerprint());
        let mut c = b.clone();
        c.op = Operator::MergeJoin { edges: vec![0] };
        assert_ne!(c.structural_fingerprint(), b.structural_fingerprint());
    }

    #[test]
    fn same_tree_distinguishes_algorithms() {
        let a = join(scan(0, 1.0), scan(1, 1.0), 1.0);
        let mut b = a.clone();
        b.op = Operator::MergeJoin { edges: vec![0] };
        assert!(!a.same_tree(&b));
    }

    #[test]
    fn signature_distinguishes_predicates() {
        let a = PlanNode::leaf(
            Operator::SeqScan {
                rel: 0,
                table: TableId(0),
                preds: vec![1],
            },
            1.0,
            1.0,
        );
        let b = PlanNode::leaf(
            Operator::SeqScan {
                rel: 0,
                table: TableId(0),
                preds: vec![2],
            },
            1.0,
            1.0,
        );
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn nodes_preorder() {
        let p = join(scan(0, 1.0), scan(1, 2.0), 10.0);
        let names: Vec<&str> = p.nodes().iter().map(|n| n.op.name()).collect();
        assert_eq!(names, vec!["HashJoin", "SeqScan", "SeqScan"]);
    }

    #[test]
    fn display_renders_tree() {
        let p = join(scan(0, 1.0), scan(1, 2.0), 10.0);
        let text = p.to_string();
        assert!(text.contains("HashJoin"));
        assert!(text.lines().count() == 3);
    }
}
