//! Optimizer-level errors.
//!
//! Plan search returns [`PlanError`] instead of panicking so that a
//! degenerate query (zero relations, too many relations for exhaustive DP)
//! or a stale table id surfaces as a typed, recoverable failure in the
//! tuning loop above it.

use std::fmt;
use storage::StorageError;

/// Errors raised during plan search.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The query references no relations; there is nothing to plan.
    NoRelations,
    /// The query joins more relations than exhaustive DP can enumerate.
    TooManyRelations { n: usize, max: usize },
    /// The DP table has no entry for the full relation set. With cartesian
    /// nested-loop joins admitted this is unreachable for well-formed
    /// queries; it is reported (not panicked) for malformed ones.
    NoPlanFound { relations: usize },
    /// A relation in the query resolves to a stale table id.
    Storage(StorageError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoRelations => {
                write!(f, "query references no relations; nothing to plan")
            }
            PlanError::TooManyRelations { n, max } => {
                write!(
                    f,
                    "query joins {n} relations; exhaustive DP is capped at {max}"
                )
            }
            PlanError::NoPlanFound { relations } => {
                write!(
                    f,
                    "plan search produced no plan for {relations} relation(s)"
                )
            }
            PlanError::Storage(e) => write!(f, "storage error during planning: {e}"),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for PlanError {
    fn from(e: StorageError) -> Self {
        PlanError::Storage(e)
    }
}
