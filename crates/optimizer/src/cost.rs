//! Physical-operator cost formulas.
//!
//! Textbook CPU+I/O costs in abstract work units, chosen so that the
//! executor's measured work tracks the optimizer's estimates to first order.
//! Every formula is monotone non-decreasing in its input cardinalities,
//! which (together with cardinalities being monotone in selectivities) gives
//! the cost-monotonicity property MNSA relies on (§4.1).

use serde::{Deserialize, Serialize};

/// Tunable constants of the plan cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Per-row cost of a sequential scan.
    pub seq_row: f64,
    /// Fixed cost of opening an index (tree descent).
    pub index_lookup: f64,
    /// Per-fetched-row cost of an index scan (random access penalty).
    pub index_row: f64,
    /// Per-row cost of building a hash table.
    pub hash_build: f64,
    /// Per-row cost of probing a hash table.
    pub hash_probe: f64,
    /// Per-comparison cost of sorting (`n log n` comparisons).
    pub sort_cmp: f64,
    /// Per-row cost of the merge phase of a sort-merge join.
    pub merge_row: f64,
    /// Per-output-row cost of any join.
    pub join_output: f64,
    /// Per-input-row cost of hash aggregation.
    pub agg_row: f64,
    /// Per-group output cost of aggregation.
    pub agg_group: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_row: 1.0,
            index_lookup: 8.0,
            index_row: 4.0,
            hash_build: 2.0,
            hash_probe: 1.2,
            sort_cmp: 0.3,
            merge_row: 1.0,
            join_output: 0.1,
            agg_row: 1.5,
            agg_group: 1.0,
        }
    }
}

impl CostParams {
    pub fn seq_scan(&self, table_rows: f64) -> f64 {
        self.seq_row * table_rows
    }

    /// Index scan fetching `seek_rows` of `table_rows` via the index.
    pub fn index_scan(&self, table_rows: f64, seek_rows: f64) -> f64 {
        let _ = table_rows;
        self.index_lookup + self.index_row * seek_rows
    }

    /// Hash join: build on the right input, probe with the left.
    pub fn hash_join(&self, probe_rows: f64, build_rows: f64, out_rows: f64) -> f64 {
        self.hash_build * build_rows + self.hash_probe * probe_rows + self.join_output * out_rows
    }

    /// Sort-merge join including both sorts.
    pub fn merge_join(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        self.sort(left_rows)
            + self.sort(right_rows)
            + self.merge_row * (left_rows + right_rows)
            + self.join_output * out_rows
    }

    /// Nested-loop join: the inner subtree is re-evaluated per outer row.
    pub fn nested_loop(&self, outer_rows: f64, inner_cost: f64, out_rows: f64) -> f64 {
        outer_rows.max(1.0) * inner_cost + self.join_output * out_rows
    }

    pub fn sort(&self, rows: f64) -> f64 {
        let n = rows.max(2.0);
        self.sort_cmp * n * n.log2()
    }

    pub fn hash_aggregate(&self, input_rows: f64, groups: f64) -> f64 {
        self.agg_row * input_rows + self.agg_group * groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_monotone_in_rows() {
        let p = CostParams::default();
        assert!(p.seq_scan(100.0) < p.seq_scan(200.0));
        assert!(p.index_scan(1000.0, 10.0) < p.index_scan(1000.0, 50.0));
        assert!(p.hash_join(100.0, 50.0, 10.0) < p.hash_join(200.0, 50.0, 10.0));
        assert!(p.hash_join(100.0, 50.0, 10.0) < p.hash_join(100.0, 80.0, 10.0));
        assert!(p.merge_join(100.0, 50.0, 10.0) < p.merge_join(100.0, 50.0, 500.0));
        assert!(p.nested_loop(10.0, 100.0, 5.0) < p.nested_loop(20.0, 100.0, 5.0));
        assert!(p.hash_aggregate(100.0, 5.0) < p.hash_aggregate(100.0, 50.0));
        assert!(p.sort(100.0) < p.sort(1000.0));
    }

    #[test]
    fn index_beats_seq_scan_only_when_selective() {
        let p = CostParams::default();
        let rows = 10_000.0;
        assert!(p.index_scan(rows, rows * 0.001) < p.seq_scan(rows));
        assert!(p.index_scan(rows, rows * 0.9) > p.seq_scan(rows));
    }
}
