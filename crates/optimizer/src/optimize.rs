//! The optimizer proper: access-path selection and dynamic-programming join
//! enumeration (Selinger-style, over relation subsets), followed by
//! aggregation placement.

use crate::cost::CostParams;
use crate::error::PlanError;
use crate::magic::MagicNumbers;
use crate::plan::{Operator, PlanNode};
use crate::selectivity::{build_profile, SelectivityProfile};
use query::{BoundSelect, CmpOp, PredOp, PredicateId};
use rustc_hash::FxHashMap;
use stats::StatsView;
use storage::Database;

/// Per-call optimization options.
#[derive(Debug, Clone, Default)]
pub struct OptimizeOptions {
    /// Forced selectivity values per variable — the §7.2 server extension
    /// ("accept the selectivity of such predicates as a parameter rather
    /// than using the default magic number"). Values are clamped to [0, 1].
    pub injected: FxHashMap<PredicateId, f64>,
}

impl OptimizeOptions {
    /// Inject the same selectivity for every listed variable (how MNSA
    /// builds `P_low` and `P_high`).
    pub fn inject_all(vars: &[PredicateId], value: f64) -> Self {
        OptimizeOptions {
            injected: vars.iter().map(|&v| (v, value)).collect(),
        }
    }
}

/// The result of one optimizer call.
#[derive(Debug, Clone)]
pub struct OptimizedQuery {
    pub plan: PlanNode,
    /// Optimizer-estimated cost of the chosen plan (`Estimated-Cost(Q, S)`
    /// in the paper's notation).
    pub cost: f64,
    /// Selectivity variables that fell back to magic numbers.
    pub magic_variables: Vec<PredicateId>,
    /// The full selectivity profile used.
    pub profile: SelectivityProfile,
}

/// The query optimizer. Stateless apart from configuration; every call is a
/// pure function of `(query, statistics view, options)`.
#[derive(Debug, Clone)]
pub struct Optimizer {
    pub magic: MagicNumbers,
    pub params: CostParams,
    /// Maximum relations optimizable with exhaustive DP.
    pub max_relations: usize,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            magic: MagicNumbers::default(),
            params: CostParams::default(),
            max_relations: 12,
        }
    }
}

/// Join strategy chosen for one DP split.
#[derive(Debug, Clone, PartialEq)]
enum Decision {
    Hash(Vec<usize>),
    Merge(Vec<usize>),
    NestedLoop(Vec<usize>),
    /// Index nested-loop: probe an index of the (single-relation) right side.
    IndexNl {
        edges: Vec<usize>,
        index: String,
    },
}

/// One DP table entry: enough to reconstruct the best plan for a relation
/// subset without cloning subtrees during enumeration.
#[derive(Debug, Clone)]
struct DpEntry {
    cost: f64,
    rows: f64,
    /// `None` for single-relation entries (access paths).
    split: Option<(u32, u32, Decision)>,
}

impl Optimizer {
    /// Optimize a bound query against the visible statistics.
    ///
    /// # Errors
    /// Returns [`PlanError`] for degenerate input: a query with no relations
    /// or more than `max_relations`, or one whose table ids are stale.
    pub fn optimize(
        &self,
        db: &Database,
        query: &BoundSelect,
        stats: StatsView<'_>,
        options: &OptimizeOptions,
    ) -> Result<OptimizedQuery, PlanError> {
        let profile = build_profile(db, &stats, query, &self.magic, &options.injected);
        self.optimize_with_profile(db, query, profile)
    }

    /// Optimize with a pre-computed selectivity profile. The profile is the
    /// only channel through which statistics reach plan selection, so
    /// `optimize` is a pure function of `(query, profile, table metadata,
    /// optimizer config)` — the fact the optimize cache relies on.
    pub(crate) fn optimize_with_profile(
        &self,
        db: &Database,
        query: &BoundSelect,
        profile: SelectivityProfile,
    ) -> Result<OptimizedQuery, PlanError> {
        let n = query.relations.len();
        if n == 0 {
            return Err(PlanError::NoRelations);
        }
        if n > self.max_relations {
            return Err(PlanError::TooManyRelations {
                n,
                max: self.max_relations,
            });
        }

        // Base (filtered) cardinality per relation and best access path.
        let paths: Vec<(f64, PlanNode)> = (0..n)
            .map(|rel| self.best_access_path(db, query, &profile, rel))
            .collect::<Result<_, _>>()?;
        let (base_rows, access): (Vec<f64>, Vec<PlanNode>) = paths.into_iter().unzip();

        // Join-edge selectivities.
        let edge_sel: Vec<f64> = (0..query.join_edges.len())
            .map(|i| profile.value(PredicateId::JoinEdge(i)))
            .collect();

        // Consistent cardinality per relation subset.
        let full = (1u32 << n) - 1;
        let mut card = vec![0.0f64; (full + 1) as usize];
        for mask in 1..=full {
            let mut c = 1.0;
            for (rel, rows) in base_rows.iter().enumerate() {
                if mask & (1 << rel) != 0 {
                    c *= rows;
                }
            }
            for (i, e) in query.join_edges.iter().enumerate() {
                if mask & (1 << e.left_rel) != 0 && mask & (1 << e.right_rel) != 0 {
                    c *= edge_sel[i];
                }
            }
            card[mask as usize] = c;
        }

        // DP over subsets: store (cost, rows, split decision) per mask and
        // reconstruct the tree once at the end — no subtree cloning inside
        // the enumeration loop.
        let mut best: Vec<Option<DpEntry>> = vec![None; (full + 1) as usize];
        for rel in 0..n {
            best[1 << rel] = Some(DpEntry {
                cost: access[rel].est_cost,
                rows: access[rel].est_rows,
                split: None,
            });
        }
        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            let out_rows = card[mask as usize];
            let mut chosen: Option<DpEntry> = None;
            // Two passes over all ordered splits (left = sub, right = mask \
            // sub): cartesian splits are considered only when no connected
            // split exists — a cartesian product must never tie-break a
            // connected join away (cardinality estimates of zero would
            // otherwise make everything cost-equivalent).
            for allow_cartesian in [false, true] {
                if chosen.is_some() {
                    break;
                }
                let mut sub = (mask - 1) & mask;
                while sub > 0 {
                    let other = mask ^ sub;
                    if let (Some(left), Some(right)) = (&best[sub as usize], &best[other as usize])
                    {
                        let crossing: Vec<usize> = query
                            .join_edges
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| {
                                (sub & (1 << e.left_rel) != 0 && other & (1 << e.right_rel) != 0)
                                    || (sub & (1 << e.right_rel) != 0
                                        && other & (1 << e.left_rel) != 0)
                            })
                            .map(|(i, _)| i)
                            .collect();
                        if crossing.is_empty() && !allow_cartesian {
                            sub = (sub - 1) & mask;
                            continue;
                        }
                        let lrows = card[sub as usize];
                        let rrows = card[other as usize];
                        let base = left.cost + right.cost;
                        let mut consider = |decision: Decision, cost: f64| {
                            if chosen.as_ref().is_none_or(|c| cost < c.cost) {
                                chosen = Some(DpEntry {
                                    cost,
                                    rows: out_rows,
                                    split: Some((sub, other, decision)),
                                });
                            }
                        };
                        if !crossing.is_empty() {
                            consider(
                                Decision::Hash(crossing.clone()),
                                base + self.params.hash_join(lrows, rrows, out_rows),
                            );
                            consider(
                                Decision::Merge(crossing.clone()),
                                base + self.params.merge_join(lrows, rrows, out_rows),
                            );
                            // Index nested-loop: only when the right side is
                            // one base relation with an index on a joined
                            // column.
                            if other.count_ones() == 1 {
                                let rel = other.trailing_zeros() as usize;
                                if let Some(index) = self.index_for_join(db, query, rel, &crossing)
                                {
                                    let raw = db.try_table(query.table_of(rel))?.row_count() as f64;
                                    let edge_sel_product: f64 = crossing
                                        .iter()
                                        .map(|&e| profile.value(PredicateId::JoinEdge(e)))
                                        .product();
                                    let fetched = raw * edge_sel_product;
                                    let cost = left.cost
                                        + lrows.max(1.0)
                                            * (self.params.index_lookup
                                                + self.params.index_row * fetched)
                                        + self.params.join_output * out_rows;
                                    consider(
                                        Decision::IndexNl {
                                            edges: crossing.clone(),
                                            index,
                                        },
                                        cost,
                                    );
                                }
                            }
                        }
                        consider(
                            Decision::NestedLoop(crossing.clone()),
                            left.cost + self.params.nested_loop(lrows, right.cost, out_rows),
                        );
                    }
                    sub = (sub - 1) & mask;
                }
            }
            best[mask as usize] = chosen;
        }

        let mut plan = self.reconstruct(query, &best, &access, full)?;

        // Aggregation on top.
        if !query.group_by.is_empty() || !query.aggregates.is_empty() {
            let input_rows = plan.est_rows;
            let groups = if query.group_by.is_empty() {
                1.0
            } else {
                (input_rows * profile.value(PredicateId::GroupBy)).max(1.0)
            };
            let cost = plan.est_cost + self.params.hash_aggregate(input_rows, groups);
            plan = PlanNode {
                op: Operator::HashAggregate {
                    group: query.group_by.clone(),
                },
                est_rows: groups,
                est_cost: cost,
                children: vec![plan],
            };
        }

        // Final ORDER BY sort. Note that sort cost depends only on the input
        // cardinality — statistics on the sort keys cannot change the plan
        // (the paper's footnote 1).
        if !query.order_by.is_empty() {
            let rows = plan.est_rows;
            let cost = plan.est_cost + self.params.sort(rows);
            plan = PlanNode {
                op: Operator::Sort {
                    keys: query.order_by.clone(),
                },
                est_rows: rows,
                est_cost: cost,
                children: vec![plan],
            };
        }

        // Under the `strict-finite` feature every chosen plan's cost and
        // cardinality must be finite; a violation is a cost-model bug, not a
        // recoverable input condition.
        #[cfg(feature = "strict-finite")]
        assert!(
            plan.est_cost.is_finite() && plan.est_rows.is_finite(),
            "non-finite plan estimate: cost={} rows={}",
            plan.est_cost,
            plan.est_rows
        );

        Ok(OptimizedQuery {
            cost: plan.est_cost,
            magic_variables: profile.magic_variables(),
            plan,
            profile,
        })
    }

    /// Best access path (seq scan vs index seek) for one relation.
    fn best_access_path(
        &self,
        db: &Database,
        query: &BoundSelect,
        profile: &SelectivityProfile,
        rel: usize,
    ) -> Result<(f64, PlanNode), PlanError> {
        let table_id = query.table_of(rel);
        let table = db.try_table(table_id)?;
        let n = table.row_count() as f64;
        let filter = profile.relation_filter(query, rel);
        let out_rows = n * filter;
        let all_preds: Vec<usize> = query.selections_on(rel).map(|(i, _)| i).collect();

        let mut best = PlanNode::leaf(
            Operator::SeqScan {
                rel,
                table: table_id,
                preds: all_preds.clone(),
            },
            out_rows,
            self.params.seq_scan(n),
        );

        for index in db.indexes_on(table_id) {
            // Seekable predicates: comparisons (except <>) and BETWEEN on the
            // index's leading column.
            let seek_preds: Vec<usize> = query
                .selections_on(rel)
                .filter(|(_, p)| p.column.column == index.leading_column())
                .filter(|(_, p)| !matches!(p.op, PredOp::Cmp(CmpOp::Ne, _)))
                .map(|(i, _)| i)
                .collect();
            if seek_preds.is_empty() {
                continue;
            }
            let seek_sel: f64 = seek_preds
                .iter()
                .map(|&i| profile.value(PredicateId::Selection(i)))
                .product();
            let residual: Vec<usize> = all_preds
                .iter()
                .copied()
                .filter(|i| !seek_preds.contains(i))
                .collect();
            let cost = self.params.index_scan(n, n * seek_sel);
            if cost < best.est_cost {
                best = PlanNode::leaf(
                    Operator::IndexScan {
                        rel,
                        table: table_id,
                        index: index.name.clone(),
                        seek_preds: seek_preds.clone(),
                        residual,
                    },
                    out_rows,
                    cost,
                );
            }
        }
        Ok((out_rows, best))
    }

    /// An index on relation `rel` whose leading column participates in one
    /// of the crossing join edges (that is, an index usable for an index
    /// nested-loop probe).
    fn index_for_join(
        &self,
        db: &Database,
        query: &BoundSelect,
        rel: usize,
        crossing: &[usize],
    ) -> Option<String> {
        let table = query.table_of(rel);
        let mut join_cols = Vec::new();
        for &e in crossing {
            let edge = &query.join_edges[e];
            for &(lc, rc) in &edge.pairs {
                if edge.left_rel == rel {
                    join_cols.push(lc);
                }
                if edge.right_rel == rel {
                    join_cols.push(rc);
                }
            }
        }
        db.indexes_on(table)
            .find(|i| join_cols.contains(&i.leading_column()))
            .map(|i| i.name.clone())
    }

    /// Rebuild the chosen plan tree from the DP table.
    ///
    /// With cartesian nested-loop joins admitted, the DP table always has an
    /// entry for every subset of a well-formed query; a missing entry is
    /// reported as [`PlanError::NoPlanFound`] instead of panicking.
    fn reconstruct(
        &self,
        query: &BoundSelect,
        best: &[Option<DpEntry>],
        access: &[PlanNode],
        mask: u32,
    ) -> Result<PlanNode, PlanError> {
        let entry =
            best.get(mask as usize)
                .and_then(|e| e.as_ref())
                .ok_or(PlanError::NoPlanFound {
                    relations: mask.count_ones() as usize,
                })?;
        match &entry.split {
            None => {
                let rel = mask.trailing_zeros() as usize;
                access
                    .get(rel)
                    .cloned()
                    .ok_or(PlanError::NoPlanFound { relations: 1 })
            }
            Some((lmask, rmask, decision)) => {
                let left = self.reconstruct(query, best, access, *lmask)?;
                match decision {
                    Decision::IndexNl { edges, index } => {
                        let inner_rel = rmask.trailing_zeros() as usize;
                        let inner_table = query.table_of(inner_rel);
                        let inner_preds: Vec<usize> =
                            query.selections_on(inner_rel).map(|(i, _)| i).collect();
                        Ok(PlanNode {
                            op: Operator::IndexNLJoin {
                                edges: edges.clone(),
                                inner_rel,
                                inner_table,
                                index: index.clone(),
                                inner_preds,
                            },
                            est_rows: entry.rows,
                            est_cost: entry.cost,
                            children: vec![left],
                        })
                    }
                    _ => {
                        let right = self.reconstruct(query, best, access, *rmask)?;
                        let op = match decision {
                            Decision::Hash(edges) => Operator::HashJoin {
                                edges: edges.clone(),
                            },
                            Decision::Merge(edges) => Operator::MergeJoin {
                                edges: edges.clone(),
                            },
                            Decision::NestedLoop(edges) | Decision::IndexNl { edges, .. } => {
                                Operator::NestedLoopJoin {
                                    edges: edges.clone(),
                                }
                            }
                        };
                        Ok(PlanNode {
                            op,
                            est_rows: entry.rows,
                            est_cost: entry.cost,
                            children: vec![left, right],
                        })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::{bind_statement, parse_statement, BoundStatement};
    use stats::{StatDescriptor, StatsCatalog};
    use storage::{ColumnDef, DataType, Schema, Value};

    /// emp(1000 rows: empid unique, deptid ∈ 0..10, age ∈ 0..100 skewed,
    /// salary ∈ 0..500) and dept(10 rows).
    fn setup() -> (Database, StatsCatalog) {
        let mut db = Database::new();
        let emp = db
            .create_table(
                "emp",
                Schema::new(vec![
                    ColumnDef::new("empid", DataType::Int),
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("age", DataType::Int),
                    ColumnDef::new("salary", DataType::Float),
                ]),
            )
            .unwrap();
        let dept = db
            .create_table(
                "dept",
                Schema::new(vec![
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..1000i64 {
            // Nearly everyone is young: age < 30 is ~95% selective the other way
            let age = if i % 20 == 0 { 30 + (i % 40) } else { i % 30 };
            db.table_mut(emp)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::Int(age),
                    Value::Float((i % 500) as f64),
                ])
                .unwrap();
        }
        for d in 0..10i64 {
            db.table_mut(dept)
                .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
                .unwrap();
        }
        db.create_index("idx_emp_empid", emp, vec![0]).unwrap();
        (db, StatsCatalog::new())
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!("not a select"),
        }
    }

    fn optimize(db: &Database, cat: &StatsCatalog, sql: &str) -> OptimizedQuery {
        let q = bind(db, sql);
        Optimizer::default()
            .optimize(db, &q, cat.full_view(), &OptimizeOptions::default())
            .unwrap()
    }

    #[test]
    fn single_table_scan() {
        let (db, cat) = setup();
        let r = optimize(&db, &cat, "SELECT * FROM dept");
        assert!(matches!(r.plan.op, Operator::SeqScan { .. }));
        assert_eq!(r.plan.est_rows, 10.0);
        assert!(r.magic_variables.is_empty());
    }

    #[test]
    fn magic_variables_reported_without_stats() {
        let (db, cat) = setup();
        let r = optimize(
            &db,
            &cat,
            "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid AND e.age < 30",
        );
        assert_eq!(
            r.magic_variables,
            vec![PredicateId::Selection(0), PredicateId::JoinEdge(0)]
        );
    }

    #[test]
    fn stale_statistics_floor_out_of_domain_plan_estimates() {
        // Regression (plan level): a histogram built before a bulk append
        // used to estimate exactly zero selectivity for predicates beyond
        // its key domain, zeroing `est_rows` for the whole plan and letting
        // the optimizer treat the scan as free. With the out-of-domain
        // floor, probes into the appended region keep a non-degenerate
        // estimate: positive, finite, and carrying real plan cost.
        let (mut db, mut cat) = setup();
        let emp = db.table_id("emp").unwrap();
        cat.create_statistic(&db, StatDescriptor::single(emp, 0))
            .unwrap(); // empid, domain [0, 999] at build time
        for i in 1000..1400i64 {
            db.table_mut(emp)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::Int(i % 30),
                    Value::Float(0.0),
                ])
                .unwrap();
        }
        for sql in [
            "SELECT * FROM emp WHERE empid = 1200",
            "SELECT * FROM emp WHERE empid > 1100",
            "SELECT * FROM emp WHERE empid BETWEEN 1050 AND 1350",
        ] {
            let r = optimize(&db, &cat, sql);
            assert!(
                r.plan.est_rows > 0.0 && r.plan.est_rows.is_finite(),
                "{sql}: degenerate estimate {}",
                r.plan.est_rows
            );
            assert!(r.cost > 0.0, "{sql}: free plan");
            // The stale statistic still answers — no magic-number fallback.
            assert!(r.magic_variables.is_empty(), "{sql}");
        }
    }

    #[test]
    fn statistics_remove_magic_variables() {
        let (db, mut cat) = setup();
        let emp = db.table_id("emp").unwrap();
        let dept = db.table_id("dept").unwrap();
        cat.create_statistic(&db, StatDescriptor::single(emp, 2))
            .unwrap(); // age
        cat.create_statistic(&db, StatDescriptor::single(emp, 1))
            .unwrap(); // deptid
        cat.create_statistic(&db, StatDescriptor::single(dept, 0))
            .unwrap(); // deptid
        let r = optimize(
            &db,
            &cat,
            "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid AND e.age < 30",
        );
        assert!(r.magic_variables.is_empty());
        // join sel should be 1/max(10,10) = 0.1 and age<30 ≈ 0.95
        let jsel = r.profile.value(PredicateId::JoinEdge(0));
        assert!((jsel - 0.1).abs() < 1e-6, "jsel={jsel}");
        let asel = r.profile.value(PredicateId::Selection(0));
        assert!(asel > 0.8, "asel={asel}");
    }

    #[test]
    fn index_seek_chosen_for_selective_predicate() {
        let (db, mut cat) = setup();
        let emp = db.table_id("emp").unwrap();
        cat.create_statistic(&db, StatDescriptor::single(emp, 0))
            .unwrap();
        let r = optimize(&db, &cat, "SELECT * FROM emp WHERE empid = 17");
        assert!(
            matches!(r.plan.op, Operator::IndexScan { .. }),
            "plan: {}",
            r.plan
        );
        // And an unselective predicate sticks with the sequential scan.
        let r2 = optimize(&db, &cat, "SELECT * FROM emp WHERE empid >= 0");
        assert!(matches!(r2.plan.op, Operator::SeqScan { .. }));
    }

    #[test]
    fn injection_overrides_magic_and_changes_cost_monotonically() {
        let (db, cat) = setup();
        let q = bind(
            &db,
            "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid AND e.age < 30",
        );
        let opt = Optimizer::default();
        let vars = [PredicateId::Selection(0), PredicateId::JoinEdge(0)];
        let mut prev = 0.0;
        for (i, s) in [0.001, 0.1, 0.5, 0.999].iter().enumerate() {
            let r = opt
                .optimize(
                    &db,
                    &q,
                    cat.full_view(),
                    &OptimizeOptions::inject_all(&vars, *s),
                )
                .unwrap();
            assert!(
                r.magic_variables.is_empty(),
                "injected variables are not magic"
            );
            if i > 0 {
                assert!(
                    r.cost >= prev - 1e-9,
                    "cost must be monotone in injected selectivity: {} < {prev}",
                    r.cost
                );
            }
            prev = r.cost;
        }
    }

    #[test]
    fn join_plan_has_two_scans() {
        let (db, cat) = setup();
        let r = optimize(
            &db,
            &cat,
            "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid",
        );
        assert!(r.plan.op.is_join());
        let scans = r.plan.nodes().iter().filter(|n| n.op.is_scan()).count();
        assert_eq!(scans, 2);
    }

    #[test]
    fn cartesian_product_uses_nested_loops() {
        let (db, cat) = setup();
        let r = optimize(&db, &cat, "SELECT * FROM emp, dept");
        assert!(matches!(r.plan.op, Operator::NestedLoopJoin { ref edges } if edges.is_empty()));
        assert_eq!(r.plan.est_rows, 10_000.0);
    }

    #[test]
    fn group_by_adds_aggregate_node() {
        let (db, cat) = setup();
        let r = optimize(
            &db,
            &cat,
            "SELECT deptid, COUNT(*) FROM emp GROUP BY deptid",
        );
        assert!(matches!(r.plan.op, Operator::HashAggregate { .. }));
        assert!(r.magic_variables.contains(&PredicateId::GroupBy));
        // With stats, group count is estimated from NDV.
        let (db2, mut cat2) = setup();
        let emp = db2.table_id("emp").unwrap();
        cat2.create_statistic(&db2, StatDescriptor::single(emp, 1))
            .unwrap();
        let r2 = optimize(
            &db2,
            &cat2,
            "SELECT deptid, COUNT(*) FROM emp GROUP BY deptid",
        );
        assert!(r2.magic_variables.is_empty());
        assert!(
            (r2.plan.est_rows - 10.0).abs() < 1.0,
            "groups={}",
            r2.plan.est_rows
        );
    }

    #[test]
    fn ignore_statistics_subset_changes_estimates() {
        use std::collections::HashSet;
        let (db, mut cat) = setup();
        let emp = db.table_id("emp").unwrap();
        let sid = cat
            .create_statistic(&db, StatDescriptor::single(emp, 2))
            .unwrap();
        let q = bind(&db, "SELECT * FROM emp WHERE age < 30");
        let opt = Optimizer::default();
        let with = opt
            .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
            .unwrap();
        let ignore: HashSet<_> = [sid].into_iter().collect();
        let without = opt
            .optimize(&db, &q, cat.view(&ignore), &OptimizeOptions::default())
            .unwrap();
        assert!(with.magic_variables.is_empty());
        assert_eq!(without.magic_variables, vec![PredicateId::Selection(0)]);
        assert_ne!(with.plan.est_rows, without.plan.est_rows);
    }

    /// Correlated predicates: without a joint histogram the optimizer
    /// multiplies marginals (attribute-value independence); with one, the
    /// pair estimate reflects the actual joint distribution.
    #[test]
    fn joint_histogram_breaks_independence_assumption() {
        use stats::BuildOptions;
        let mut db = Database::new();
        let t = db
            .create_table(
                "m",
                Schema::new(vec![
                    ColumnDef::new("x", DataType::Int),
                    ColumnDef::new("y", DataType::Int),
                ]),
            )
            .unwrap();
        // y == x: perfectly correlated.
        for i in 0..2000i64 {
            db.table_mut(t)
                .insert(vec![Value::Int(i % 100), Value::Int(i % 100)])
                .unwrap();
        }
        let q = bind(&db, "SELECT * FROM m WHERE x < 50 AND y >= 50");
        let opt = Optimizer::default();

        // Independence: ~0.5 * 0.5 = 0.25 of rows survive the (empty) filter.
        let mut marginal_cat = StatsCatalog::new();
        marginal_cat
            .create_statistic(&db, StatDescriptor::multi(t, vec![0, 1]))
            .unwrap();
        marginal_cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        marginal_cat
            .create_statistic(&db, StatDescriptor::single(t, 1))
            .unwrap();
        let r1 = opt
            .optimize(
                &db,
                &q,
                marginal_cat.full_view(),
                &OptimizeOptions::default(),
            )
            .unwrap();
        assert!(
            r1.plan.est_rows > 300.0,
            "independence estimate: {}",
            r1.plan.est_rows
        );

        // Joint: the contradiction is visible — almost nothing survives.
        let mut joint_cat =
            StatsCatalog::new().with_build_options(BuildOptions::default().with_joint_histograms());
        joint_cat
            .create_statistic(&db, StatDescriptor::multi(t, vec![0, 1]))
            .unwrap();
        joint_cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        joint_cat
            .create_statistic(&db, StatDescriptor::single(t, 1))
            .unwrap();
        let r2 = opt
            .optimize(&db, &q, joint_cat.full_view(), &OptimizeOptions::default())
            .unwrap();
        assert!(
            r2.plan.est_rows < 120.0,
            "joint estimate should be near zero: {}",
            r2.plan.est_rows
        );
        assert!(r1.magic_variables.is_empty() && r2.magic_variables.is_empty());
    }

    /// Injected selectivities bypass the joint refinement (MNSA's probes
    /// must reach the cost model exactly).
    #[test]
    fn injection_bypasses_joint_refinement() {
        use stats::BuildOptions;
        let mut db = Database::new();
        let t = db
            .create_table(
                "m",
                Schema::new(vec![
                    ColumnDef::new("x", DataType::Int),
                    ColumnDef::new("y", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..500i64 {
            db.table_mut(t)
                .insert(vec![Value::Int(i % 10), Value::Int(i % 10)])
                .unwrap();
        }
        let q = bind(&db, "SELECT * FROM m WHERE x < 5 AND y >= 5");
        let mut cat =
            StatsCatalog::new().with_build_options(BuildOptions::default().with_joint_histograms());
        cat.create_statistic(&db, StatDescriptor::multi(t, vec![0, 1]))
            .unwrap();
        let opt = Optimizer::default();
        let vars = q.predicate_ids();
        let r = opt
            .optimize(
                &db,
                &q,
                cat.full_view(),
                &OptimizeOptions::inject_all(&vars, 0.5),
            )
            .unwrap();
        for id in vars {
            assert_eq!(r.profile.value(id), 0.5, "{id} was not passed through");
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let (db, cat) = setup();
        let sql = "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid AND e.age < 30";
        let a = optimize(&db, &cat, sql);
        let b = optimize(&db, &cat, sql);
        assert!(a.plan.same_tree(&b.plan));
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn eight_way_join_optimizes() {
        // Chain of 8 relations — the paper's "Complex" workload bound.
        let mut db = Database::new();
        let mut ids = Vec::new();
        for t in 0..8 {
            let id = db
                .create_table(
                    format!("t{t}"),
                    Schema::new(vec![
                        ColumnDef::new("k", DataType::Int),
                        ColumnDef::new("fk", DataType::Int),
                    ]),
                )
                .unwrap();
            for i in 0..50i64 {
                db.table_mut(id)
                    .insert(vec![Value::Int(i), Value::Int(i % 10)])
                    .unwrap();
            }
            ids.push(id);
        }
        let cat = StatsCatalog::new();
        let mut sql = String::from("SELECT * FROM t0");
        for t in 1..8 {
            sql.push_str(&format!(", t{t}"));
        }
        sql.push_str(" WHERE ");
        let conds: Vec<String> = (1..8)
            .map(|t| format!("t{}.fk = t{}.k", t - 1, t))
            .collect();
        sql.push_str(&conds.join(" AND "));
        let r = optimize(&db, &cat, &sql);
        assert_eq!(r.plan.nodes().iter().filter(|n| n.op.is_scan()).count(), 8);
        assert!(r.cost > 0.0);
    }
}
