//! Default "magic number" selectivities (§4.1 of the paper).
//!
//! "Magic numbers are system wide constants between 0 and 1 that are
//! predetermined for various kinds of predicates." The paper's own example
//! uses 0.30 for a range predicate without statistics; the remaining values
//! follow the classical System R / SQL Server conventions.

use query::PredClass;
use serde::{Deserialize, Serialize};

/// The per-predicate-class default selectivities used when no statistics
/// apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MagicNumbers {
    /// `col = literal`.
    pub equality: f64,
    /// `col <> literal`.
    pub inequality: f64,
    /// `col < / <= / > / >= literal` — the paper's example value is 0.30.
    pub range: f64,
    /// `col BETWEEN a AND b`.
    pub between: f64,
    /// Equi-join edge between two relations.
    pub join: f64,
    /// GROUP BY distinct-fraction: estimated fraction of input rows that are
    /// distinct in the grouping columns.
    pub group_by: f64,
}

impl Default for MagicNumbers {
    fn default() -> Self {
        MagicNumbers {
            equality: 0.10,
            inequality: 0.90,
            range: 0.30,
            between: 0.25,
            join: 0.10,
            group_by: 0.10,
        }
    }
}

impl MagicNumbers {
    /// The default selectivity for a predicate class.
    pub fn for_class(&self, class: PredClass) -> f64 {
        match class {
            PredClass::Equality => self.equality,
            PredClass::Inequality => self.inequality,
            PredClass::Range => self.range,
            PredClass::Between => self.between,
            PredClass::Join => self.join,
            PredClass::GroupBy => self.group_by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_selectivities() {
        let m = MagicNumbers::default();
        for class in [
            PredClass::Equality,
            PredClass::Inequality,
            PredClass::Range,
            PredClass::Between,
            PredClass::Join,
            PredClass::GroupBy,
        ] {
            let v = m.for_class(class);
            assert!((0.0..=1.0).contains(&v), "{class:?} -> {v}");
        }
    }

    #[test]
    fn range_matches_paper_example() {
        // §4.1: "most relational optimizers use a default magic number, say
        // 0.30, for the selectivity of the range predicate".
        assert_eq!(MagicNumbers::default().range, 0.30);
    }
}
