//! A cost-based query optimizer for the supported SPJ + GROUP BY subset.
//!
//! This crate plays the role Microsoft SQL Server 7.0's optimizer plays in
//! the paper. The algorithms in `autostats` treat it as an oracle:
//!
//! ```text
//! optimize(query, visible statistics, injected selectivities)
//!     -> (physical plan tree, estimated cost, magic-number variables)
//! ```
//!
//! Three properties matter for faithfulness to the paper:
//!
//! 1. **Magic numbers** (§4.1): every predicate without applicable statistics
//!    gets a system-wide default selectivity; the optimizer reports *which*
//!    selectivity variables fell back to magic numbers.
//! 2. **Selectivity injection** (§7.2): any selectivity variable can be
//!    overridden with a caller-supplied value in `[0, 1]` — MNSA uses this to
//!    construct `P_low` (all magic variables at ε) and `P_high` (at 1−ε).
//! 3. **Ignore_Statistics_Subset** (§7.2): optimization can be told to ignore
//!    a subset of the existing statistics, which the Shrinking Set algorithm
//!    needs — this arrives as the [`stats::StatsView`] argument.
//!
//! The physical cost model is monotone non-decreasing in every input
//! selectivity (the paper's *cost-monotonicity* assumption, §4.1), which a
//! property test in this crate verifies.

// Library code must stay panic-free on arbitrary input; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod cost;
pub mod error;
pub mod magic;
pub mod optimize;
pub mod plan;
pub mod selectivity;

pub use cache::{CacheCounters, OptimizeCache};
pub use cost::CostParams;
pub use error::PlanError;
pub use magic::MagicNumbers;
pub use optimize::{OptimizeOptions, OptimizedQuery, Optimizer};
pub use plan::{Operator, PlanNode};
pub use selectivity::{SelectivityProfile, SelectivitySource};

/// Relative cost comparison used by *t-Optimizer-Cost equivalence* (§3.2):
/// true when `|a - b| / min(a, b) <= t/100`.
///
/// ```
/// assert!(optimizer::costs_within_t(100.0, 115.0, 20.0));
/// assert!(!optimizer::costs_within_t(100.0, 130.0, 20.0));
/// ```
pub fn costs_within_t(a: f64, b: f64, t_percent: f64) -> bool {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if lo <= 0.0 {
        return hi <= 0.0;
    }
    (hi - lo) / lo <= t_percent / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_within_t_basic() {
        assert!(costs_within_t(100.0, 119.0, 20.0));
        assert!(!costs_within_t(100.0, 121.0, 20.0));
        assert!(costs_within_t(119.0, 100.0, 20.0), "symmetric");
        assert!(costs_within_t(0.0, 0.0, 20.0));
        assert!(!costs_within_t(0.0, 1.0, 20.0));
        assert!(costs_within_t(5.0, 5.0, 0.0));
    }
}
