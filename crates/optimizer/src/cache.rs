//! A memoized optimizer: caches `optimize` results across repeated calls.
//!
//! MNSA asks the optimizer the same questions over and over — the Figure 1
//! loop issues `3 + 3r` optimizer calls per query, and workload-level tools
//! (parameter sweeps, the parallel tuner's validation reruns, differential
//! determinism checks) repeat whole call sequences verbatim. This module
//! makes those repeats cheap without ever changing a single answer.
//!
//! ## Keying
//!
//! `Optimizer::optimize` is a pure function. Its inputs are:
//!
//! 1. the bound query (structure + constants),
//! 2. the selectivity profile — the **only** channel through which
//!    statistics and injected selectivities reach plan selection,
//! 3. per-table metadata read directly from the database (row counts and
//!    index definitions),
//! 4. the optimizer configuration (magic numbers, cost parameters).
//!
//! The cache key is a fingerprint of exactly these four inputs. Because the
//! *content* of the statistics reads is hashed (via
//! [`SelectivityProfile::fingerprint`](crate::SelectivityProfile::fingerprint)),
//! a cached entry can never be stale: any catalog mutation that would change
//! the optimizer's answer necessarily changes the profile, and therefore the
//! key. Computing the profile on every lookup costs a few histogram probes —
//! orders of magnitude cheaper than the dynamic-programming join enumeration
//! a hit skips.
//!
//! ## Invalidation
//!
//! Value-based keys make invalidation a *memory-bounding* concern rather
//! than a correctness one. A cache can run in two modes:
//!
//! * **attached** — [`OptimizeCache::attach`] registers the cache as a
//!   [`CatalogObserver`] on a `StatsCatalog`; every statistics mutation
//!   (create / drop-list / reactivate / physical drop / refresh) evicts the
//!   entries of queries referencing the mutated table, keeping the cache
//!   from accumulating entries for dead catalog states;
//! * **detached** — no observer; entries persist and can be shared across
//!   *multiple* catalogs (e.g. the sweep points of `exp_tsweep`, which
//!   re-optimize the same workload under many catalog trajectories).

use crate::error::PlanError;
use crate::optimize::{OptimizeOptions, OptimizedQuery, Optimizer};
use crate::selectivity::build_profile;
use parking_lot::RwLock;
use query::BoundSelect;
use rustc_hash::FxHashMap;
use stats::{CatalogObserver, StatsCatalog, StatsView};
use std::fmt;
use std::sync::Arc;
use storage::{Database, TableId};

/// Minimal FNV-1a 64-bit hasher over explicit words/bytes. Used instead of
/// `std::hash::DefaultHasher` so fingerprints are stable across Rust
/// versions and processes.
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    pub fn write(&mut self, word: u64) -> &mut Self {
        for b in word.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
        self
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
        self
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Cache key: fingerprints of the four inputs `optimize` is a pure function
/// of (query, statistics-subset signature, table metadata + optimizer
/// config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    query: u64,
    /// Profile fingerprint — values *and* sources of every selectivity
    /// variable, which covers both the visible statistics subset and any
    /// injected selectivities.
    signature: u64,
    /// Table metadata (row counts, indexes) and optimizer configuration.
    context: u64,
}

struct CacheEntry {
    result: OptimizedQuery,
    /// Tables the cached query references — the eviction granularity of
    /// observer-driven invalidation.
    tables: Vec<TableId>,
}

/// Counter snapshot of an [`OptimizeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub entries: usize,
}

impl CacheCounters {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} hit-rate={:.1}% invalidations={} entries={}",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.invalidations,
            self.entries
        )
    }
}

/// Thread-safe memoization of [`Optimizer::optimize_cached`] results.
///
/// Counters are [`obsv::Counter`] handles owned by this cache instance —
/// per-cache accounting keeps working as before — and can additionally be
/// registered in an [`obsv::Registry`] under the shared naming scheme
/// (`optimizer.cache.{hit,miss,invalidation}`) via
/// [`OptimizeCache::with_metrics`], so a registry snapshot and the
/// [`CacheCounters`] accessors read the *same* storage.
#[derive(Default)]
pub struct OptimizeCache {
    entries: RwLock<FxHashMap<CacheKey, CacheEntry>>,
    hits: obsv::Counter,
    misses: obsv::Counter,
    invalidations: obsv::Counter,
}

impl fmt::Debug for OptimizeCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OptimizeCache")
            .field("counters", &self.counters())
            .finish()
    }
}

impl OptimizeCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache whose counters are registered in `registry` as
    /// `optimizer.cache.hit`, `optimizer.cache.miss`, and
    /// `optimizer.cache.invalidation`. The per-cache accessors
    /// ([`OptimizeCache::hits`] etc.) read the same underlying atomics as
    /// the registry snapshot.
    pub fn with_metrics(registry: &obsv::Registry) -> Self {
        OptimizeCache {
            entries: RwLock::default(),
            hits: registry.counter("optimizer.cache.hit"),
            misses: registry.counter("optimizer.cache.miss"),
            invalidations: registry.counter("optimizer.cache.invalidation"),
        }
    }

    /// Register this cache as an invalidation observer of `catalog`: every
    /// statistics mutation evicts the entries of queries touching the
    /// mutated table. The catalog holds only a weak reference; dropping the
    /// cache detaches it automatically.
    pub fn attach(self: &Arc<Self>, catalog: &mut StatsCatalog) {
        let weak: std::sync::Weak<Self> = Arc::downgrade(self);
        catalog.register_observer(weak);
    }

    fn lookup(&self, key: &CacheKey) -> Option<OptimizedQuery> {
        let guard = self.entries.read();
        match guard.get(key) {
            Some(entry) => {
                self.hits.inc();
                Some(entry.result.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn store(&self, key: CacheKey, tables: Vec<TableId>, result: OptimizedQuery) {
        self.entries
            .write()
            .insert(key, CacheEntry { result, tables });
    }

    /// Evict every entry referencing `table`; returns the eviction count.
    pub fn evict_table(&self, table: TableId) -> usize {
        let mut guard = self.entries.write();
        let before = guard.len();
        guard.retain(|_, e| !e.tables.contains(&table));
        let evicted = before - guard.len();
        self.invalidations.add(evicted as u64);
        evicted
    }

    /// Drop every entry (counted as invalidations).
    pub fn clear(&self) {
        let mut guard = self.entries.write();
        self.invalidations.add(guard.len() as u64);
        guard.clear();
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    pub fn invalidations(&self) -> u64 {
        self.invalidations.get()
    }

    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits(),
            misses: self.misses(),
            invalidations: self.invalidations(),
            entries: self.len(),
        }
    }
}

impl CatalogObserver for OptimizeCache {
    fn on_table_mutation(&self, table: TableId) {
        self.evict_table(table);
    }

    fn on_reset(&self) {
        self.clear();
    }
}

/// Fingerprint of the non-statistics optimizer inputs: per-relation table
/// metadata (row count, indexes) plus the optimizer configuration.
fn context_fingerprint(optimizer: &Optimizer, db: &Database, query: &BoundSelect) -> u64 {
    let mut h = Fnv::new();
    for &(table_id, _) in &query.relations {
        h.write(table_id.0 as u64);
        // A stale table id contributes only its id to the fingerprint; the
        // subsequent optimization reports the error itself (and errors are
        // never cached), so no stale entry can form.
        let Ok(table) = db.try_table(table_id) else {
            continue;
        };
        h.write(table.row_count() as u64);
        for index in db.indexes_on(table_id) {
            h.write_bytes(index.name.as_bytes())
                .write(index.columns.len() as u64);
            for &c in &index.columns {
                h.write(c as u64);
            }
        }
    }
    let m = &optimizer.magic;
    for v in [
        m.equality,
        m.inequality,
        m.range,
        m.between,
        m.join,
        m.group_by,
    ] {
        h.write(v.to_bits());
    }
    let p = &optimizer.params;
    for v in [
        p.seq_row,
        p.index_lookup,
        p.index_row,
        p.hash_build,
        p.hash_probe,
        p.sort_cmp,
        p.merge_row,
        p.join_output,
        p.agg_row,
        p.agg_group,
    ] {
        h.write(v.to_bits());
    }
    h.write(optimizer.max_relations as u64);
    h.finish()
}

impl Optimizer {
    /// [`Optimizer::optimize`] through a cache. Bit-identical to the uncached
    /// call: on a miss the real optimization runs and is stored; a hit
    /// returns a clone of a result produced by identical inputs. Errors are
    /// reported but never cached, so a later call with a repaired catalog or
    /// database sees a fresh optimization.
    pub fn optimize_cached(
        &self,
        db: &Database,
        query: &BoundSelect,
        stats: StatsView<'_>,
        options: &OptimizeOptions,
        cache: &OptimizeCache,
    ) -> Result<OptimizedQuery, PlanError> {
        let profile = build_profile(db, &stats, query, &self.magic, &options.injected);
        let key = CacheKey {
            query: query.fingerprint(),
            signature: profile.fingerprint(),
            context: context_fingerprint(self, db, query),
        };
        if let Some(hit) = cache.lookup(&key) {
            return Ok(hit);
        }
        let mut tables: Vec<TableId> = query.relations.iter().map(|&(t, _)| t).collect();
        tables.sort();
        tables.dedup();
        let result = self.optimize_with_profile(db, query, profile)?;
        cache.store(key, tables, result.clone());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::{bind_statement, parse_statement, BoundStatement};
    use stats::StatDescriptor;
    use storage::{ColumnDef, DataType, Schema, Value};

    fn setup() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..2000i64 {
            db.table_mut(t)
                .insert(vec![Value::Int(i % 40), Value::Int(i % 7)])
                .unwrap();
        }
        db
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!(),
        }
    }

    #[test]
    fn hit_returns_identical_result() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM t WHERE a = 3");
        let opt = Optimizer::default();
        let cache = OptimizeCache::new();
        let catalog = StatsCatalog::new();
        let fresh = opt
            .optimize(&db, &q, catalog.full_view(), &OptimizeOptions::default())
            .unwrap();
        let first = opt
            .optimize_cached(
                &db,
                &q,
                catalog.full_view(),
                &OptimizeOptions::default(),
                &cache,
            )
            .unwrap();
        let second = opt
            .optimize_cached(
                &db,
                &q,
                catalog.full_view(),
                &OptimizeOptions::default(),
                &cache,
            )
            .unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        for r in [&first, &second] {
            assert!(r.plan.same_tree(&fresh.plan));
            assert_eq!(r.cost, fresh.cost);
            assert_eq!(r.magic_variables, fresh.magic_variables);
            assert_eq!(r.profile, fresh.profile);
        }
    }

    #[test]
    fn statistics_change_changes_key() {
        let db = setup();
        let t = db.table_id("t").unwrap();
        let q = bind(&db, "SELECT * FROM t WHERE a = 3");
        let opt = Optimizer::default();
        let cache = OptimizeCache::new();
        let mut catalog = StatsCatalog::new();
        opt.optimize_cached(
            &db,
            &q,
            catalog.full_view(),
            &OptimizeOptions::default(),
            &cache,
        )
        .unwrap();
        catalog
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        // New statistics => new profile => miss, and the result matches an
        // uncached optimization against the new catalog.
        let cached = opt
            .optimize_cached(
                &db,
                &q,
                catalog.full_view(),
                &OptimizeOptions::default(),
                &cache,
            )
            .unwrap();
        let fresh = opt
            .optimize(&db, &q, catalog.full_view(), &OptimizeOptions::default())
            .unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cached.cost, fresh.cost);
        assert_eq!(cached.profile, fresh.profile);
    }

    #[test]
    fn injected_selectivities_get_distinct_entries() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM t WHERE a = 3");
        let opt = Optimizer::default();
        let cache = OptimizeCache::new();
        let catalog = StatsCatalog::new();
        let vars = [query::PredicateId::Selection(0)];
        let low = OptimizeOptions::inject_all(&vars, 0.0005);
        let high = OptimizeOptions::inject_all(&vars, 0.9995);
        let a = opt
            .optimize_cached(&db, &q, catalog.full_view(), &low, &cache)
            .unwrap();
        let b = opt
            .optimize_cached(&db, &q, catalog.full_view(), &high, &cache)
            .unwrap();
        assert_eq!(cache.misses(), 2, "distinct injections must not collide");
        assert!(a.cost != b.cost || !a.plan.same_tree(&b.plan) || a.profile != b.profile);
        let a2 = opt
            .optimize_cached(&db, &q, catalog.full_view(), &low, &cache)
            .unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(a2.cost, a.cost);
    }

    #[test]
    fn attached_cache_evicts_on_mutation() {
        let db = setup();
        let t = db.table_id("t").unwrap();
        let q = bind(&db, "SELECT * FROM t WHERE a = 3");
        let opt = Optimizer::default();
        let cache = Arc::new(OptimizeCache::new());
        let mut catalog = StatsCatalog::new();
        cache.attach(&mut catalog);
        opt.optimize_cached(
            &db,
            &q,
            catalog.full_view(),
            &OptimizeOptions::default(),
            &cache,
        )
        .unwrap();
        assert_eq!(cache.len(), 1);
        catalog
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        assert_eq!(cache.len(), 0, "mutation must evict the table's entries");
        assert_eq!(cache.invalidations(), 1);
    }

    #[test]
    fn with_metrics_registers_counters() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM t WHERE a = 3");
        let opt = Optimizer::default();
        let registry = obsv::Registry::new();
        let cache = OptimizeCache::with_metrics(&registry);
        let catalog = StatsCatalog::new();
        for _ in 0..3 {
            opt.optimize_cached(
                &db,
                &q,
                catalog.full_view(),
                &OptimizeOptions::default(),
                &cache,
            )
            .unwrap();
        }
        // The registry snapshot and the per-cache accessors read the same
        // atomics.
        let snap = registry.snapshot();
        assert_eq!(
            snap.entries.get("optimizer.cache.hit"),
            Some(&obsv::MetricValue::Counter(cache.hits()))
        );
        assert_eq!(
            snap.entries.get("optimizer.cache.miss"),
            Some(&obsv::MetricValue::Counter(1))
        );
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn counters_sum_to_lookups() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM t WHERE a = 3 AND b = 1");
        let opt = Optimizer::default();
        let cache = OptimizeCache::new();
        let catalog = StatsCatalog::new();
        for _ in 0..5 {
            opt.optimize_cached(
                &db,
                &q,
                catalog.full_view(),
                &OptimizeOptions::default(),
                &cache,
            )
            .unwrap();
        }
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, 5);
        assert_eq!(c.entries, 1);
        assert!(c.hit_rate() > 0.7);
        assert!(format!("{c}").contains("hit-rate"));
    }
}
