//! The 17 TPC-D benchmark queries, rendered in the supported subset.
//!
//! TPC-D (Working Draft 6.0, 1993 — reference [16] of the paper) defines 17
//! decision-support queries. The paper's intro experiment runs all 17 on a
//! tuned 1 GB database and observes that creating relevant column statistics
//! changed the plan of all but two. Our versions keep each query's join
//! structure, selection predicates and GROUP BY, and flatten the features
//! outside the paper's SPJ+aggregation scope (subqueries, LIKE, IN-lists,
//! column-to-column comparisons) into equivalent simple predicates — the
//! paper's own techniques are only defined for this class (§4.1).

use query::{parse_statement, SelectStmt, Statement};

/// SQL text of Q1–Q17. Dates are days since 1970-01-01 (the generator's
/// domain is 8035..10440, i.e. 1992-01-01 through ~1998-08).
pub const TPCD_QUERY_SQL: [&str; 17] = [
    // Q1: pricing summary report
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), \
            AVG(l_discount), COUNT(*) \
     FROM lineitem WHERE l_shipdate <= 10280 GROUP BY l_returnflag, l_linestatus",
    // Q2: minimum cost supplier (min-subquery flattened)
    "SELECT s_name, p_partkey FROM part, partsupp, supplier, nation, region \
     WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15 \
       AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'EUROPE'",
    // Q3: shipping priority
    "SELECT l_orderkey, SUM(l_extendedprice), o_orderdate \
     FROM customer, orders, lineitem \
     WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND o_orderdate < 8850 AND l_shipdate > 8850 \
     GROUP BY l_orderkey, o_orderdate",
    // Q4: order priority checking (EXISTS flattened to a join)
    "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem \
     WHERE l_orderkey = o_orderkey AND o_orderdate >= 8900 AND o_orderdate < 8990 \
       AND l_receiptdate > 9000 \
     GROUP BY o_orderpriority",
    // Q5: local supplier volume
    "SELECT n_name, SUM(l_extendedprice) \
     FROM customer, orders, lineitem, supplier, nation, region \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey \
       AND c_nationkey = n_nationkey AND s_nationkey = n_nationkey \
       AND n_regionkey = r_regionkey AND r_name = 'ASIA' \
       AND o_orderdate >= 8400 AND o_orderdate < 8765 \
     GROUP BY n_name",
    // Q6: forecasting revenue change
    "SELECT SUM(l_extendedprice) FROM lineitem \
     WHERE l_shipdate >= 8400 AND l_shipdate < 8765 \
       AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24.0",
    // Q7: volume shipping (two nation roles)
    "SELECT n1.n_name, n2.n_name, SUM(l_extendedprice) \
     FROM supplier, lineitem, orders, customer, nation n1, nation n2 \
     WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey \
       AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey \
       AND n1.n_name = 'NATION03' AND n2.n_name = 'NATION07' \
       AND l_shipdate BETWEEN 9131 AND 9861 \
     GROUP BY n1.n_name, n2.n_name",
    // Q8: national market share (8 relations)
    "SELECT n2.n_name, SUM(l_extendedprice) \
     FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
     WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey \
       AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey \
       AND n1.n_regionkey = r_regionkey AND r_name = 'AMERICA' \
       AND s_nationkey = n2.n_nationkey AND o_orderdate BETWEEN 9131 AND 9861 \
       AND p_type = 'ECONOMY POLISHED BRASS' \
     GROUP BY n2.n_name",
    // Q9: product type profit measure (LIKE flattened to brand equality)
    "SELECT n_name, SUM(l_extendedprice) \
     FROM part, supplier, lineitem, partsupp, orders, nation \
     WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
       AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
       AND p_brand = 'Brand#12' \
     GROUP BY n_name",
    // Q10: returned item reporting
    "SELECT c_custkey, SUM(l_extendedprice) \
     FROM customer, orders, lineitem, nation \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND o_orderdate >= 8670 AND o_orderdate < 8760 AND l_returnflag = 'R' \
       AND c_nationkey = n_nationkey \
     GROUP BY c_custkey",
    // Q11: important stock identification
    "SELECT ps_partkey, SUM(ps_supplycost) FROM partsupp, supplier, nation \
     WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'NATION07' \
     GROUP BY ps_partkey",
    // Q12: shipping modes and order priority (IN-list flattened)
    "SELECT l_shipmode, COUNT(*) FROM orders, lineitem \
     WHERE o_orderkey = l_orderkey AND l_shipmode = 'MAIL' \
       AND l_receiptdate >= 8765 AND l_receiptdate < 9131 \
     GROUP BY l_shipmode",
    // Q13: customer distribution by priority
    "SELECT c_nationkey, COUNT(*) FROM customer, orders \
     WHERE c_custkey = o_custkey AND o_orderpriority = '1-URGENT' \
     GROUP BY c_nationkey",
    // Q14: promotion effect
    "SELECT SUM(l_extendedprice) FROM lineitem, part \
     WHERE l_partkey = p_partkey AND l_shipdate >= 8800 AND l_shipdate < 8830 \
       AND p_type = 'PROMO BURNISHED COPPER'",
    // Q15: top supplier (view flattened)
    "SELECT s_suppkey, SUM(l_extendedprice) FROM supplier, lineitem \
     WHERE s_suppkey = l_suppkey AND l_shipdate >= 9100 AND l_shipdate < 9190 \
     GROUP BY s_suppkey",
    // Q16: parts/supplier relationship
    "SELECT p_brand, p_type, COUNT(*) FROM partsupp, part \
     WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#5' \
       AND p_size BETWEEN 1 AND 15 \
     GROUP BY p_brand, p_type",
    // Q17: small-quantity-order revenue (avg-subquery flattened)
    "SELECT SUM(l_extendedprice) FROM lineitem, part \
     WHERE p_partkey = l_partkey AND p_brand = 'Brand#3' \
       AND p_container = 'MED BOX' AND l_quantity < 5.0",
];

/// Parse and return the 17 TPC-D queries (the `TPCD-ORIG` workload of §8).
pub fn tpcd_benchmark_queries() -> Vec<SelectStmt> {
    TPCD_QUERY_SQL
        .iter()
        .map(|sql| match parse_statement(sql) {
            Ok(Statement::Select(q)) => q,
            Ok(_) => unreachable!("TPC-D queries are SELECTs"),
            Err(e) => panic!("TPC-D query failed to parse: {e}\n{sql}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcd::{build_tpcd, TpcdConfig};
    use query::{bind_statement, BoundStatement, Statement};

    #[test]
    fn all_17_parse() {
        assert_eq!(tpcd_benchmark_queries().len(), 17);
    }

    #[test]
    fn all_17_bind_against_generated_schema() {
        let db = build_tpcd(&TpcdConfig::default());
        for (i, q) in tpcd_benchmark_queries().into_iter().enumerate() {
            let bound = bind_statement(&db, &Statement::Select(q))
                .unwrap_or_else(|e| panic!("Q{} failed to bind: {e}", i + 1));
            let BoundStatement::Select(b) = bound else {
                panic!()
            };
            assert!(!b.relations.is_empty());
        }
    }

    #[test]
    fn q8_joins_eight_relations() {
        let db = build_tpcd(&TpcdConfig::default());
        let q = tpcd_benchmark_queries().remove(7);
        let BoundStatement::Select(b) = bind_statement(&db, &Statement::Select(q)).unwrap() else {
            panic!()
        };
        assert_eq!(b.relations.len(), 8);
        assert!(b.join_edges.len() >= 6);
    }

    #[test]
    fn queries_have_relevant_columns() {
        let db = build_tpcd(&TpcdConfig::default());
        for q in tpcd_benchmark_queries() {
            let BoundStatement::Select(b) = bind_statement(&db, &Statement::Select(q)).unwrap()
            else {
                panic!()
            };
            assert!(!b.relevant_columns().is_empty());
        }
    }
}
