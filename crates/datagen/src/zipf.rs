//! Zipfian sampling.
//!
//! Rank `r` (0-based) of `n` has probability proportional to `1/(r+1)^z`.
//! `z = 0` degenerates to the uniform distribution; the paper's generator
//! supports `z` up to 4 (highly skewed).

use rand::Rng;

/// A Zipfian distribution over `0..n` with precomputed CDF for O(log n)
/// sampling.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf(z) distribution over `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or `z < 0`.
    pub fn new(n: usize, z: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(z >= 0.0, "Zipf parameter must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// [`Zipf::new`] with degenerate parameters sanitized instead of
    /// panicking: an empty domain becomes a single rank, a negative or
    /// non-finite `z` (including NaN) falls back to `0` (uniform), and `z`
    /// is capped at `8` — beyond that the mass is numerically all on rank 0
    /// anyway. The adversarial generator accepts arbitrary user/proptest
    /// knobs, so it routes every construction through here.
    pub fn clamped(n: usize, z: f64) -> Zipf {
        let z = if z.is_finite() {
            z.clamp(0.0, 8.0)
        } else {
            0.0
        };
        Zipf::new(n.max(1), z)
    }

    /// Number of ranks.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // First index whose cdf >= u. `total_cmp` keeps the search total
        // even if a degenerate parameterization ever produced a NaN entry.
        match self.cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn z0_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for zp in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let z = Zipf::new(100, zp);
            let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "z={zp}: {total}");
        }
    }

    #[test]
    fn skew_increases_with_z() {
        let z1 = Zipf::new(100, 1.0);
        let z4 = Zipf::new(100, 4.0);
        assert!(z4.pmf(0) > z1.pmf(0));
        assert!(z4.pmf(99) < z1.pmf(99));
        assert!(
            z4.pmf(0) > 0.9,
            "z=4 concentrates almost all mass on rank 0"
        );
    }

    #[test]
    fn empirical_frequencies_follow_zipf_law() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // rank 0 / rank 9 frequency ratio should approximate (10/1)^1 = 10.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((ratio - 10.0).abs() < 2.0, "ratio={ratio}");
    }

    #[test]
    fn sample_in_domain() {
        let z = Zipf::new(7, 2.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn clamped_sanitizes_degenerate_parameters() {
        // Regression: the adversarial generator feeds arbitrary knobs here;
        // none of these may panic or produce a non-distribution.
        for (n, z) in [
            (0, 1.0),
            (1, 0.0),
            (10, -3.0),
            (10, f64::NAN),
            (10, f64::INFINITY),
            (10, 100.0),
        ] {
            let d = Zipf::clamped(n, z);
            assert!(d.domain() >= 1);
            let total: f64 = (0..d.domain()).map(|r| d.pmf(r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} z={z}: {total}");
        }
        // Negative and NaN fall back to uniform.
        let u = Zipf::clamped(4, -1.0);
        for r in 0..4 {
            assert!((u.pmf(r) - 0.25).abs() < 1e-12);
        }
        // A single-rank domain always samples rank 0.
        let one = Zipf::clamped(0, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(one.sample(&mut rng), 0);
        }
    }
}
