//! The TPC-D schema and skewed data generation.
//!
//! The paper's experiments (§8.1) run on TPC-D databases whose columns are
//! drawn from Zipfian distributions: `TPCD_0` (z = 0, the benchmark's
//! uniform requirement), `TPCD_2`, `TPCD_4`, and `TPCD_MIX` (each column a
//! random z in [0, 4]). This module rebuilds that generator over the full
//! 8-table schema, plus the "tuned database with 13 indexes" configuration
//! of the intro experiment.
//!
//! Primary keys stay sequential (they must remain keys for joins to make
//! sense); foreign keys and attribute columns are drawn Zipf(z) over their
//! domains, which is where skew affects selectivity estimation.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage::{ColumnDef, DataType, Database, Schema, TableId, Value};

/// How skew is assigned to columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZipfSpec {
    /// Every column uses the same z.
    Fixed(f64),
    /// Each column gets an independent random z in [0, 4] (the paper's
    /// "mixed data distributions" instance).
    Mixed,
}

impl ZipfSpec {
    fn z_for(&self, rng: &mut StdRng) -> f64 {
        match self {
            ZipfSpec::Fixed(z) => *z,
            ZipfSpec::Mixed => rng.gen_range(0.0..=4.0),
        }
    }

    /// Database name suffix used in the paper's charts.
    pub fn label(&self) -> String {
        match self {
            ZipfSpec::Fixed(z) => format!("TPCD_{}", *z as i64),
            ZipfSpec::Mixed => "TPCD_MIX".to_string(),
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpcdConfig {
    /// TPC-D scale factor. 1.0 would be the benchmark's 6M-row lineitem;
    /// experiments here default to small fractions (results are ratios).
    pub scale: f64,
    pub zipf: ZipfSpec,
    pub seed: u64,
}

impl Default for TpcdConfig {
    fn default() -> Self {
        TpcdConfig {
            scale: 0.005,
            zipf: ZipfSpec::Fixed(0.0),
            seed: 42,
        }
    }
}

impl TpcdConfig {
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(5)
    }
}

const DATE_LO: i32 = 8035; // 1992-01-01 as days since epoch
const DATE_DAYS: usize = 2405; // ~ through 1998-08

struct Gen {
    rng: StdRng,
    zipf_rng: StdRng,
    spec: ZipfSpec,
}

impl Gen {
    /// A Zipf sampler over `n` ranks with this database's skew policy;
    /// the z for each call site is drawn once (per column).
    fn zipf(&mut self, n: usize) -> Zipf {
        let z = self.spec.z_for(&mut self.zipf_rng);
        Zipf::new(n, z)
    }

    /// Zipf sampler for foreign-key columns, with skew capped at z = 1.
    ///
    /// Substitution note (see DESIGN.md): the paper's generator skews every
    /// column up to z = 4. Full skew on *join keys* makes random many-to-many
    /// join results grow quadratically — tolerable on the paper's server
    /// harness, not in a deterministic interpreter that must run thousands of
    /// queries in seconds. Attribute columns (where skew drives selectivity
    /// estimation quality, the paper's actual subject) keep the full z.
    fn zipf_fk(&mut self, n: usize) -> Zipf {
        let z = self.spec.z_for(&mut self.zipf_rng).min(1.0);
        Zipf::new(n, z)
    }
}

/// Column generators: each yields one value per row.
enum ColGen {
    /// Sequential 0..n primary key.
    Serial,
    /// Zipfian over 0..n mapped through a function.
    ZipfInt {
        zipf: Zipf,
        map: fn(usize) -> i64,
    },
    ZipfChoice {
        zipf: Zipf,
        choices: Vec<String>,
    },
    ZipfFloat {
        zipf: Zipf,
        lo: f64,
        step: f64,
    },
    ZipfDate {
        zipf: Zipf,
    },
    /// Zipfian foreign key into 0..parent_rows.
    ZipfFk {
        zipf: Zipf,
    },
    /// `row % n` — spreads a foreign key evenly so composite keys built on
    /// top of it stay (nearly) unique, like TPC-D's partsupp primary key.
    SerialMod(usize),
    /// Label column derived from the row number ("name#<row>").
    Label(&'static str),
}

impl ColGen {
    fn value(&self, row: usize, rng: &mut StdRng) -> Value {
        match self {
            ColGen::Serial => Value::Int(row as i64),
            ColGen::ZipfInt { zipf, map } => Value::Int(map(zipf.sample(rng))),
            ColGen::ZipfChoice { zipf, choices } => {
                Value::Str(choices[zipf.sample(rng) % choices.len()].clone())
            }
            ColGen::ZipfFloat { zipf, lo, step } => {
                Value::Float(lo + step * zipf.sample(rng) as f64)
            }
            ColGen::ZipfDate { zipf } => Value::Date(DATE_LO + zipf.sample(rng) as i32),
            ColGen::ZipfFk { zipf } => Value::Int(zipf.sample(rng) as i64),
            ColGen::SerialMod(n) => Value::Int((row % n) as i64),
            ColGen::Label(prefix) => Value::Str(format!("{prefix}#{row}")),
        }
    }
}

fn fill_table(db: &mut Database, id: TableId, rows: usize, cols: Vec<ColGen>, rng: &mut StdRng) {
    for row in 0..rows {
        let values: Vec<Value> = cols.iter().map(|c| c.value(row, rng)).collect();
        db.table_mut(id)
            .insert(values)
            .expect("generated row is valid");
    }
    // Bulk load: zero the counter so the generated data is the staleness
    // baseline, not "everything was just modified".
    #[allow(deprecated)]
    db.table_mut(id).reset_modification_counter();
}

fn choices(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

/// Build a skewed TPC-D database.
pub fn build_tpcd(config: &TpcdConfig) -> Database {
    let mut db = Database::new();
    let mut g = Gen {
        rng: StdRng::seed_from_u64(config.seed),
        zipf_rng: StdRng::seed_from_u64(config.seed ^ 0x5eed),
        spec: config.zipf,
    };

    let n_region = 5;
    let n_nation = 25;
    let n_supplier = config.rows(10_000).max(10);
    let n_part = config.rows(200_000).max(50);
    let n_partsupp = config.rows(800_000).max(100);
    let n_customer = config.rows(150_000).max(30);
    let n_orders = config.rows(1_500_000).max(100);
    let n_lineitem = config.rows(6_000_000).max(200);

    // region
    let region = db
        .create_table(
            "region",
            Schema::new(vec![
                ColumnDef::new("r_regionkey", DataType::Int),
                ColumnDef::new("r_name", DataType::Str),
            ]),
        )
        .unwrap();
    {
        let names = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
        for (i, n) in names.iter().enumerate() {
            db.table_mut(region)
                .insert(vec![Value::Int(i as i64), Value::Str(n.to_string())])
                .unwrap();
        }
        #[allow(deprecated)]
        db.table_mut(region).reset_modification_counter();
    }

    // nation
    let nation = db
        .create_table(
            "nation",
            Schema::new(vec![
                ColumnDef::new("n_nationkey", DataType::Int),
                ColumnDef::new("n_name", DataType::Str),
                ColumnDef::new("n_regionkey", DataType::Int),
            ]),
        )
        .unwrap();
    {
        let fk = g.zipf_fk(n_region);
        let mut cols = Vec::new();
        for i in 0..n_nation {
            cols.push(vec![
                Value::Int(i as i64),
                Value::Str(format!("NATION{i:02}")),
                Value::Int(fk.sample(&mut g.rng) as i64),
            ]);
        }
        db.table_mut(nation).insert_many(cols).unwrap();
        #[allow(deprecated)]
        db.table_mut(nation).reset_modification_counter();
    }

    // supplier
    let supplier = db
        .create_table(
            "supplier",
            Schema::new(vec![
                ColumnDef::new("s_suppkey", DataType::Int),
                ColumnDef::new("s_name", DataType::Str),
                ColumnDef::new("s_nationkey", DataType::Int),
                ColumnDef::new("s_acctbal", DataType::Float),
            ]),
        )
        .unwrap();
    {
        let cols = vec![
            ColGen::Serial,
            ColGen::Label("Supplier"),
            ColGen::ZipfFk {
                zipf: g.zipf_fk(n_nation),
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(1000),
                lo: -999.0,
                step: 11.0,
            },
        ];
        fill_table(&mut db, supplier, n_supplier, cols, &mut g.rng);
    }

    // part
    let part = db
        .create_table(
            "part",
            Schema::new(vec![
                ColumnDef::new("p_partkey", DataType::Int),
                ColumnDef::new("p_name", DataType::Str),
                ColumnDef::new("p_brand", DataType::Str),
                ColumnDef::new("p_type", DataType::Str),
                ColumnDef::new("p_size", DataType::Int),
                ColumnDef::new("p_container", DataType::Str),
                ColumnDef::new("p_retailprice", DataType::Float),
            ]),
        )
        .unwrap();
    {
        let brands: Vec<String> = (1..=25).map(|i| format!("Brand#{i}")).collect();
        let types = choices(&[
            "STANDARD ANODIZED TIN",
            "SMALL PLATED COPPER",
            "MEDIUM BURNISHED NICKEL",
            "LARGE BRUSHED STEEL",
            "ECONOMY POLISHED BRASS",
            "PROMO BURNISHED COPPER",
        ]);
        let containers = choices(&["SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG", "WRAP JAR"]);
        let cols = vec![
            ColGen::Serial,
            ColGen::Label("part"),
            ColGen::ZipfChoice {
                zipf: g.zipf(25),
                choices: brands,
            },
            ColGen::ZipfChoice {
                zipf: g.zipf(6),
                choices: types,
            },
            ColGen::ZipfInt {
                zipf: g.zipf(50),
                map: |r| r as i64 + 1,
            },
            ColGen::ZipfChoice {
                zipf: g.zipf(5),
                choices: containers,
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(1000),
                lo: 900.0,
                step: 1.1,
            },
        ];
        fill_table(&mut db, part, n_part, cols, &mut g.rng);
    }

    // partsupp
    let partsupp = db
        .create_table(
            "partsupp",
            Schema::new(vec![
                ColumnDef::new("ps_partkey", DataType::Int),
                ColumnDef::new("ps_suppkey", DataType::Int),
                ColumnDef::new("ps_availqty", DataType::Int),
                ColumnDef::new("ps_supplycost", DataType::Float),
            ]),
        )
        .unwrap();
    {
        // (ps_partkey, ps_suppkey) approximates the TPC-D primary key: the
        // part key spreads evenly and only the supplier choice is skewed, so
        // pair joins against lineitem keep bounded fan-out.
        let cols = vec![
            ColGen::SerialMod(n_part),
            ColGen::ZipfFk {
                zipf: g.zipf_fk(n_supplier),
            },
            ColGen::ZipfInt {
                zipf: g.zipf(10_000),
                map: |r| r as i64,
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(1000),
                lo: 1.0,
                step: 1.0,
            },
        ];
        fill_table(&mut db, partsupp, n_partsupp, cols, &mut g.rng);
    }

    // customer
    let customer = db
        .create_table(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_custkey", DataType::Int),
                ColumnDef::new("c_name", DataType::Str),
                ColumnDef::new("c_nationkey", DataType::Int),
                ColumnDef::new("c_acctbal", DataType::Float),
                ColumnDef::new("c_mktsegment", DataType::Str),
            ]),
        )
        .unwrap();
    {
        let segments = choices(&[
            "AUTOMOBILE",
            "BUILDING",
            "FURNITURE",
            "MACHINERY",
            "HOUSEHOLD",
        ]);
        let cols = vec![
            ColGen::Serial,
            ColGen::Label("Customer"),
            ColGen::ZipfFk {
                zipf: g.zipf_fk(n_nation),
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(1000),
                lo: -999.0,
                step: 11.0,
            },
            ColGen::ZipfChoice {
                zipf: g.zipf(5),
                choices: segments,
            },
        ];
        fill_table(&mut db, customer, n_customer, cols, &mut g.rng);
    }

    // orders
    let orders = db
        .create_table(
            "orders",
            Schema::new(vec![
                ColumnDef::new("o_orderkey", DataType::Int),
                ColumnDef::new("o_custkey", DataType::Int),
                ColumnDef::new("o_orderstatus", DataType::Str),
                ColumnDef::new("o_totalprice", DataType::Float),
                ColumnDef::new("o_orderdate", DataType::Date),
                ColumnDef::new("o_orderpriority", DataType::Str),
                ColumnDef::new("o_shippriority", DataType::Int),
            ]),
        )
        .unwrap();
    {
        let priorities = choices(&["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]);
        let cols = vec![
            ColGen::Serial,
            ColGen::ZipfFk {
                zipf: g.zipf_fk(n_customer),
            },
            ColGen::ZipfChoice {
                zipf: g.zipf(3),
                choices: choices(&["F", "O", "P"]),
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(10_000),
                lo: 850.0,
                step: 45.0,
            },
            ColGen::ZipfDate {
                zipf: g.zipf(DATE_DAYS),
            },
            ColGen::ZipfChoice {
                zipf: g.zipf(5),
                choices: priorities,
            },
            ColGen::ZipfInt {
                zipf: g.zipf(2),
                map: |r| r as i64,
            },
        ];
        fill_table(&mut db, orders, n_orders, cols, &mut g.rng);
    }

    // lineitem
    let lineitem = db
        .create_table(
            "lineitem",
            Schema::new(vec![
                ColumnDef::new("l_orderkey", DataType::Int),
                ColumnDef::new("l_partkey", DataType::Int),
                ColumnDef::new("l_suppkey", DataType::Int),
                ColumnDef::new("l_linenumber", DataType::Int),
                ColumnDef::new("l_quantity", DataType::Float),
                ColumnDef::new("l_extendedprice", DataType::Float),
                ColumnDef::new("l_discount", DataType::Float),
                ColumnDef::new("l_tax", DataType::Float),
                ColumnDef::new("l_returnflag", DataType::Str),
                ColumnDef::new("l_linestatus", DataType::Str),
                ColumnDef::new("l_shipdate", DataType::Date),
                ColumnDef::new("l_receiptdate", DataType::Date),
                ColumnDef::new("l_shipmode", DataType::Str),
            ]),
        )
        .unwrap();
    {
        let modes = choices(&["MAIL", "SHIP", "AIR", "TRUCK", "RAIL", "FOB", "REG AIR"]);
        let cols = vec![
            ColGen::ZipfFk {
                zipf: g.zipf_fk(n_orders),
            },
            ColGen::ZipfFk {
                zipf: g.zipf_fk(n_part),
            },
            ColGen::ZipfFk {
                zipf: g.zipf_fk(n_supplier),
            },
            ColGen::ZipfInt {
                zipf: g.zipf(7),
                map: |r| r as i64 + 1,
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(50),
                lo: 1.0,
                step: 1.0,
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(10_000),
                lo: 900.0,
                step: 9.5,
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(11),
                lo: 0.0,
                step: 0.01,
            },
            ColGen::ZipfFloat {
                zipf: g.zipf(9),
                lo: 0.0,
                step: 0.01,
            },
            ColGen::ZipfChoice {
                zipf: g.zipf(3),
                choices: choices(&["A", "N", "R"]),
            },
            ColGen::ZipfChoice {
                zipf: g.zipf(2),
                choices: choices(&["F", "O"]),
            },
            ColGen::ZipfDate {
                zipf: g.zipf(DATE_DAYS),
            },
            ColGen::ZipfDate {
                zipf: g.zipf(DATE_DAYS),
            },
            ColGen::ZipfChoice {
                zipf: g.zipf(7),
                choices: modes,
            },
        ];
        fill_table(&mut db, lineitem, n_lineitem, cols, &mut g.rng);
    }

    db
}

/// Create the "tuned database" secondary indexes — 13 of them, mirroring the
/// intro experiment's configuration. Indexed leading columns are where
/// SQL Server would already hold statistics.
pub fn create_tuned_indexes(db: &mut Database) {
    let specs: [(&str, &str); 13] = [
        ("region", "r_regionkey"),
        ("nation", "n_nationkey"),
        ("supplier", "s_suppkey"),
        ("part", "p_partkey"),
        ("partsupp", "ps_partkey"),
        ("customer", "c_custkey"),
        ("customer", "c_nationkey"),
        ("orders", "o_orderkey"),
        ("orders", "o_custkey"),
        ("partsupp", "ps_suppkey"),
        ("lineitem", "l_orderkey"),
        ("lineitem", "l_partkey"),
        ("lineitem", "l_suppkey"),
    ];
    for (i, (table, column)) in specs.iter().enumerate() {
        let tid = db.table_id(table).expect("tpcd table exists");
        let col = db
            .table(tid)
            .schema()
            .index_of(column)
            .expect("tpcd column exists");
        db.create_index(format!("idx{i:02}_{table}_{column}"), tid, vec![col])
            .expect("unique index name");
    }
}

/// The four standard experiment databases of §8: z = 0, 2, 4, and mixed.
pub fn standard_databases(scale: f64, seed: u64) -> Vec<(String, Database)> {
    [
        ZipfSpec::Fixed(0.0),
        ZipfSpec::Fixed(2.0),
        ZipfSpec::Fixed(4.0),
        ZipfSpec::Mixed,
    ]
    .into_iter()
    .map(|zipf| {
        let cfg = TpcdConfig { scale, zipf, seed };
        (zipf.label(), build_tpcd(&cfg))
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_eight_tables() {
        let db = build_tpcd(&TpcdConfig::default());
        for t in [
            "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
        ] {
            assert!(db.table_id(t).is_some(), "missing {t}");
        }
        let li = db.table_by_name("lineitem").unwrap();
        assert!(li.row_count() >= 200);
        assert_eq!(li.schema().len(), 13);
    }

    #[test]
    fn scale_controls_row_counts() {
        let small = build_tpcd(&TpcdConfig {
            scale: 0.001,
            ..Default::default()
        });
        let big = build_tpcd(&TpcdConfig {
            scale: 0.01,
            ..Default::default()
        });
        assert!(
            big.table_by_name("orders").unwrap().row_count()
                > 5 * small.table_by_name("orders").unwrap().row_count()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TpcdConfig::default();
        let a = build_tpcd(&cfg);
        let b = build_tpcd(&cfg);
        let ta = a.table_by_name("orders").unwrap();
        let tb = b.table_by_name("orders").unwrap();
        assert_eq!(ta.row_count(), tb.row_count());
        for r in (0..ta.row_count()).step_by(17) {
            assert_eq!(ta.value(r, 4), tb.value(r, 4));
        }
    }

    #[test]
    fn skew_shows_in_value_frequencies() {
        let uniform = build_tpcd(&TpcdConfig {
            zipf: ZipfSpec::Fixed(0.0),
            scale: 0.01,
            seed: 9,
        });
        let skewed = build_tpcd(&TpcdConfig {
            zipf: ZipfSpec::Fixed(3.0),
            scale: 0.01,
            seed: 9,
        });
        let count_top = |db: &Database| {
            let t = db.table_by_name("orders").unwrap();
            let col = t.schema().index_of("o_custkey").unwrap();
            (0..t.row_count())
                .filter(|&r| t.value(r, col) == Value::Int(0))
                .count()
        };
        assert!(
            count_top(&skewed) > 3 * count_top(&uniform).max(1),
            "skewed={} uniform={}",
            count_top(&skewed),
            count_top(&uniform)
        );
    }

    #[test]
    fn tuned_indexes_count() {
        let mut db = build_tpcd(&TpcdConfig::default());
        create_tuned_indexes(&mut db);
        assert_eq!(db.indexes().len(), 13);
    }

    #[test]
    fn standard_databases_labels() {
        let dbs = standard_databases(0.002, 1);
        let labels: Vec<&str> = dbs.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["TPCD_0", "TPCD_2", "TPCD_4", "TPCD_MIX"]);
    }

    #[test]
    fn modification_counters_start_clean() {
        let db = build_tpcd(&TpcdConfig::default());
        for id in db.table_ids() {
            assert_eq!(db.table(id).modification_counter(), 0);
        }
    }

    #[test]
    fn dates_in_expected_range() {
        let db = build_tpcd(&TpcdConfig::default());
        let t = db.table_by_name("lineitem").unwrap();
        let col = t.schema().index_of("l_shipdate").unwrap();
        for r in 0..t.row_count().min(100) {
            match t.value(r, col) {
                Value::Date(d) => assert!((DATE_LO..DATE_LO + DATE_DAYS as i32).contains(&d)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
