//! Adversarial data + workload generation for the estimation-quality
//! harness (`exp_cardbench`).
//!
//! The paper evaluates MNSA on TPC-D-style data, where estimation is
//! comparatively easy. The cardinality-estimation benchmark literature
//! (PAPERS.md) shows that q-error only degrades meaningfully on *skewed*,
//! *correlated*, many-way-join workloads — exactly the regimes a statistics
//! advisor must earn its keep on. This module builds those regimes:
//!
//! * [`Regime::Uniform`] — a control: independent uniform columns.
//! * [`Regime::Zipf`] — heavy-tail columns via [`Zipf`] with a configurable
//!   `z`, so equality predicates on hot values are badly served by the
//!   uniform magic numbers.
//! * [`Regime::Correlated`] — pairwise-correlated column groups with a
//!   controllable correlation coefficient `rho`: with probability `rho` the
//!   second column repeats the first, otherwise it draws independently.
//!   Conjunctions over a pair break the attribute-value-independence
//!   assumption by a factor of roughly `rho / P(b = x)`.
//! * [`Regime::Star`] — a parameterized star/snowflake schema: one fact
//!   table, `dims` dimension tables joined by PK–FK equi-joins (FK draws
//!   are Zipf-skewed so some dimension rows are hot), plus an optional
//!   sub-dimension off `dim0` turning the star into a snowflake.
//!
//! [`adversarial_queries`] generates a seeded query workload over each
//! regime, with selection constants sampled from the live data. Everything
//! is deterministic under a fixed seed, and — unlike the grandfathered
//! TPC-D/Rags generators — this module is covered by the workspace's
//! panic-free clippy gate: degenerate knobs (empty tables, NaN skew,
//! all-NULL columns) are sanitized, never unwrapped.

use crate::zipf::Zipf;
use query::{AggFunc, CmpOp, ColumnRef, Condition, SelectItem, SelectStmt, TableRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use storage::{ColumnDef, DataType, Database, Schema, TableId, Value};

/// One of the four workload regimes of the estimation-quality bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    Uniform,
    Zipf,
    Correlated,
    Star,
}

impl Regime {
    pub const ALL: [Regime; 4] = [
        Regime::Uniform,
        Regime::Zipf,
        Regime::Correlated,
        Regime::Star,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Regime::Uniform => "uniform",
            Regime::Zipf => "zipf",
            Regime::Correlated => "correlated",
            Regime::Star => "star",
        }
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Generator knobs. All fields are sanitized before use ([`Self::sane`]),
/// so arbitrary (proptest-supplied) values build valid databases.
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Fact-table rows (single-table regimes use the same count).
    pub rows: usize,
    /// Distinct values per generated data column.
    pub domain: usize,
    /// Zipf parameter for the skewed regime and star FK draws.
    pub zipf_z: f64,
    /// Correlation coefficient `rho ∈ [0, 1]` for correlated column pairs.
    pub correlation: f64,
    /// NULL share in the nullable member of each correlated pair.
    pub null_fraction: f64,
    /// Star: number of dimension tables (clamped to `1..=6`).
    pub dims: usize,
    /// Star: rows per dimension table.
    pub dim_rows: usize,
    /// Star: add a sub-dimension off `dim0` (snowflake).
    pub snowflake: bool,
    pub seed: u64,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            rows: 4_000,
            domain: 50,
            zipf_z: 2.0,
            correlation: 0.9,
            null_fraction: 0.05,
            dims: 4,
            dim_rows: 100,
            snowflake: true,
            seed: 42,
        }
    }
}

impl AdversarialConfig {
    /// A smaller configuration for smoke tests of the harness itself.
    pub fn tiny() -> Self {
        AdversarialConfig {
            rows: 600,
            domain: 30,
            dims: 3,
            dim_rows: 40,
            ..AdversarialConfig::default()
        }
    }

    /// Clamp every knob into its valid range (NaN/∞ fall back to safe
    /// defaults); the constructors below only ever see sane values.
    fn sane(&self) -> AdversarialConfig {
        let clamp01 = |x: f64| {
            if x.is_finite() {
                x.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        AdversarialConfig {
            rows: self.rows,
            domain: self.domain.max(1),
            zipf_z: if self.zipf_z.is_finite() {
                self.zipf_z.clamp(0.0, 8.0)
            } else {
                0.0
            },
            correlation: clamp01(self.correlation),
            null_fraction: clamp01(self.null_fraction),
            dims: self.dims.clamp(1, 6),
            dim_rows: self.dim_rows.max(1),
            snowflake: self.snowflake,
            seed: self.seed,
        }
    }
}

/// The single data table of the non-star regimes.
pub const FACTS: &str = "facts";
/// The star fact table.
pub const FACT: &str = "fact";
/// The snowflake sub-dimension.
pub const SUBDIM: &str = "subdim";

/// Name of star dimension table `i`.
pub fn dim_name(i: usize) -> String {
    format!("dim{i}")
}

fn new_table(db: &mut Database, name: &str, cols: Vec<ColumnDef>) -> TableId {
    match db.create_table(name, Schema::new(cols)) {
        Ok(id) => id,
        // Fresh database, generator-chosen distinct names: cannot collide.
        Err(e) => unreachable!("adversarial schema creation failed: {e}"),
    }
}

fn bulk_load(db: &mut Database, id: TableId, rows: Vec<Vec<Value>>) {
    if let Err(e) = db.table_mut(id).insert_many(rows) {
        unreachable!("adversarial generator produced an invalid row: {e}");
    }
    // Bulk load: the generated data is the staleness baseline.
    #[allow(deprecated)]
    db.table_mut(id).reset_modification_counter();
}

/// Index `column` of `table`. Without indexes every single-table query has
/// exactly one access path, so misestimates would be invisible in plan
/// choice (and MNSA's P_low/P_high probe would trivially converge: a pure
/// seq-scan cost does not depend on selectivity at all). The harness
/// therefore indexes the filtered columns, making access-path and join-order
/// decisions — and thus plan-cost regret — selectivity-dependent.
fn index_column(db: &mut Database, table: TableId, name: &str, column: &str) {
    let Some(col) = db.table(table).schema().index_of(column) else {
        unreachable!("adversarial index on unknown column {column}");
    };
    if let Err(e) = db.create_index(name, table, vec![col]) {
        unreachable!("adversarial index creation failed: {e}");
    }
}

/// Draw one correlated pair: `b` repeats `a` with probability `rho`,
/// otherwise draws independently from the same base distribution; `b` is
/// NULL with probability `null_fraction` (applied after the draw, so
/// `null_fraction = 1` yields an all-NULL column without panicking).
fn correlated_draw(rng: &mut StdRng, base: &Zipf, rho: f64, null_fraction: f64) -> (Value, Value) {
    let a = base.sample(rng) as i64;
    let b = if rho > 0.0 && rng.gen_bool(rho) {
        a
    } else {
        base.sample(rng) as i64
    };
    let b = if null_fraction > 0.0 && rng.gen_bool(null_fraction) {
        Value::Null
    } else {
        Value::Int(b)
    };
    (Value::Int(a), b)
}

/// Build the single-table database of the uniform / zipf / correlated
/// regimes: `facts(f_id, c_a, c_b, c_c, c_d, f_val)`. All three regimes
/// share the schema so the same query shapes apply; only the column
/// distributions differ.
fn build_single(cfg: &AdversarialConfig, regime: Regime) -> Database {
    let mut db = Database::new();
    let t = new_table(
        &mut db,
        FACTS,
        vec![
            ColumnDef::new("f_id", DataType::Int),
            ColumnDef::new("c_a", DataType::Int),
            ColumnDef::new("c_b", DataType::Int).nullable(),
            ColumnDef::new("c_c", DataType::Int),
            ColumnDef::new("c_d", DataType::Int).nullable(),
            ColumnDef::new("f_val", DataType::Float),
        ],
    );
    let z = match regime {
        Regime::Uniform => 0.0,
        Regime::Zipf => cfg.zipf_z,
        // Mild base skew: the correlation, not the marginals, is the trap.
        Regime::Correlated | Regime::Star => 1.0,
    };
    let dist = Zipf::clamped(cfg.domain, z);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut rows = Vec::with_capacity(cfg.rows);
    for i in 0..cfg.rows {
        let (a, b, c, d) = if regime == Regime::Correlated {
            let (a, b) = correlated_draw(&mut rng, &dist, cfg.correlation, cfg.null_fraction);
            let (c, d) = correlated_draw(&mut rng, &dist, cfg.correlation, cfg.null_fraction);
            (a, b, c, d)
        } else {
            (
                Value::Int(dist.sample(&mut rng) as i64),
                Value::Int(dist.sample(&mut rng) as i64),
                Value::Int(dist.sample(&mut rng) as i64),
                Value::Int(dist.sample(&mut rng) as i64),
            )
        };
        rows.push(vec![
            Value::Int(i as i64),
            a,
            b,
            c,
            d,
            Value::Float(rng.gen::<f64>() * 100.0),
        ]);
    }
    bulk_load(&mut db, t, rows);
    // One indexed column per correlated pair; c_b/c_d stay unindexed so
    // both access paths occur in the workload.
    index_column(&mut db, t, "ix_facts_c_a", "c_a");
    index_column(&mut db, t, "ix_facts_c_c", "c_c");
    db
}

/// Build the star/snowflake database: `fact(f_id, f_dim0.., f_val)` with
/// Zipf-skewed FK draws, `dim{i}(d{i}_id, d{i}_attr, d{i}_flag)` with a
/// skewed low-cardinality attribute (so equality filters range from
/// selective to hot), and under `snowflake` a `subdim` referenced from
/// `dim0`.
fn build_star(cfg: &AdversarialConfig) -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let attr_domain = (cfg.dim_rows / 5).clamp(2, 25);
    let attr_dist = Zipf::clamped(attr_domain, 1.5);

    let sub_rows = (cfg.dim_rows / 4).max(1);
    let sub = if cfg.snowflake {
        let id = new_table(
            &mut db,
            SUBDIM,
            vec![
                ColumnDef::new("s_id", DataType::Int),
                ColumnDef::new("s_attr", DataType::Int),
            ],
        );
        let rows = (0..sub_rows)
            .map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(attr_dist.sample(&mut rng) as i64),
                ]
            })
            .collect();
        bulk_load(&mut db, id, rows);
        index_column(&mut db, id, "ix_subdim_s_id", "s_id");
        Some(id)
    } else {
        None
    };

    let sub_fk = Zipf::clamped(sub_rows, 1.0);
    for i in 0..cfg.dims {
        let mut cols = vec![
            ColumnDef::new(format!("d{i}_id"), DataType::Int),
            ColumnDef::new(format!("d{i}_attr"), DataType::Int),
            ColumnDef::new(format!("d{i}_flag"), DataType::Int),
        ];
        if i == 0 && sub.is_some() {
            cols.push(ColumnDef::new("d0_sub", DataType::Int));
        }
        let id = new_table(&mut db, &dim_name(i), cols);
        let rows = (0..cfg.dim_rows)
            .map(|r| {
                let mut row = vec![
                    Value::Int(r as i64),
                    Value::Int(attr_dist.sample(&mut rng) as i64),
                    Value::Int(i64::from(rng.gen_bool(0.5))),
                ];
                if i == 0 && sub.is_some() {
                    row.push(Value::Int(sub_fk.sample(&mut rng) as i64));
                }
                row
            })
            .collect();
        bulk_load(&mut db, id, rows);
        index_column(&mut db, id, &format!("ix_dim{i}_id"), &format!("d{i}_id"));
        index_column(
            &mut db,
            id,
            &format!("ix_dim{i}_attr"),
            &format!("d{i}_attr"),
        );
    }

    let mut fact_cols = vec![ColumnDef::new("f_id", DataType::Int)];
    for i in 0..cfg.dims {
        fact_cols.push(ColumnDef::new(format!("f_dim{i}"), DataType::Int));
    }
    fact_cols.push(ColumnDef::new("f_val", DataType::Float));
    let fact = new_table(&mut db, FACT, fact_cols);
    let fk_dist = Zipf::clamped(cfg.dim_rows, cfg.zipf_z.max(1.0));
    let rows = (0..cfg.rows)
        .map(|r| {
            let mut row = vec![Value::Int(r as i64)];
            for _ in 0..cfg.dims {
                row.push(Value::Int(fk_dist.sample(&mut rng) as i64));
            }
            row.push(Value::Float(rng.gen::<f64>() * 100.0));
            row
        })
        .collect();
    bulk_load(&mut db, fact, rows);
    for i in 0..cfg.dims {
        index_column(
            &mut db,
            fact,
            &format!("ix_fact_dim{i}"),
            &format!("f_dim{i}"),
        );
    }
    db
}

/// Build the adversarial database for one regime. Deterministic under
/// `cfg.seed`; any degenerate knob is sanitized rather than rejected.
pub fn build_adversarial(cfg: &AdversarialConfig, regime: Regime) -> Database {
    let cfg = cfg.sane();
    match regime {
        Regime::Star => build_star(&cfg),
        _ => build_single(&cfg, regime),
    }
}

/// Seeded query generator over an adversarial database.
struct QueryGen<'a> {
    db: &'a Database,
    cfg: AdversarialConfig,
    rng: StdRng,
}

impl<'a> QueryGen<'a> {
    /// A non-NULL constant sampled from the live column, so predicate
    /// selectivities reflect the data's skew. Falls back to a harmless
    /// constant on empty or all-NULL columns (the query stays valid, it
    /// just selects nothing).
    fn sample_value(&mut self, table: &str, column: &str) -> Value {
        let Ok(t) = self.db.table_by_name(table) else {
            return Value::Int(0);
        };
        let Some(col) = t.schema().index_of(column) else {
            return Value::Int(0);
        };
        if t.row_count() == 0 {
            return Value::Int(0);
        }
        for _ in 0..8 {
            let v = t.value(self.rng.gen_range(0..t.row_count()), col);
            if v != Value::Null {
                return v;
            }
        }
        (0..t.row_count())
            .map(|r| t.value(r, col))
            .find(|v| *v != Value::Null)
            .unwrap_or(Value::Int(0))
    }

    /// One range-representable selection on `(table, column)`: equality
    /// half the time, otherwise a one-sided range or a BETWEEN. Keeping
    /// every shape range-representable lets joint 2-D histograms refine
    /// predicate pairs.
    fn selection(&mut self, table: &str, column: &str) -> Condition {
        let col = ColumnRef::new(table, column);
        let v = self.sample_value(table, column);
        match self.rng.gen_range(0..10) {
            0..=4 => Condition::Compare {
                column: col,
                op: CmpOp::Eq,
                value: v,
            },
            5..=7 => {
                let op = match self.rng.gen_range(0..4) {
                    0 => CmpOp::Lt,
                    1 => CmpOp::Le,
                    2 => CmpOp::Gt,
                    _ => CmpOp::Ge,
                };
                Condition::Compare {
                    column: col,
                    op,
                    value: v,
                }
            }
            _ => {
                let w = self.sample_value(table, column);
                let (lo, hi) = if v <= w { (v, w) } else { (w, v) };
                Condition::Between {
                    column: col,
                    low: lo,
                    high: hi,
                }
            }
        }
    }

    /// Single-table query over `facts`. The correlated-pair probe (both
    /// columns of one pair constrained together) dominates, because that is
    /// the shape on which independence-assuming estimation fails.
    fn single_table_query(&mut self) -> SelectStmt {
        const PAIRS: [(&str, &str); 2] = [("c_a", "c_b"), ("c_c", "c_d")];
        const COLS: [&str; 4] = ["c_a", "c_b", "c_c", "c_d"];
        let mut conditions = Vec::new();
        let roll = self.rng.gen_range(0..10);
        let mut group_by = Vec::new();
        let mut items = vec![SelectItem::Star];
        if roll < 4 {
            let (x, y) = PAIRS[self.rng.gen_range(0..PAIRS.len())];
            conditions.push(self.selection(FACTS, x));
            conditions.push(self.selection(FACTS, y));
        } else if roll < 7 {
            let c = COLS[self.rng.gen_range(0..COLS.len())];
            conditions.push(self.selection(FACTS, c));
        } else if roll < 9 {
            for _ in 0..3 {
                let c = COLS[self.rng.gen_range(0..COLS.len())];
                conditions.push(self.selection(FACTS, c));
            }
        } else {
            let g = COLS[self.rng.gen_range(0..COLS.len())];
            let gcol = ColumnRef::new(FACTS, g);
            items = vec![
                SelectItem::Column(gcol.clone()),
                SelectItem::Aggregate(AggFunc::Count, None),
            ];
            group_by = vec![gcol];
            conditions.push(self.selection(FACTS, "f_val"));
        }
        SelectStmt {
            items,
            from: vec![TableRef::new(FACTS)],
            conditions,
            group_by,
            order_by: Vec::new(),
        }
    }

    /// Star/snowflake query: the fact table joined to a random subset of
    /// dimensions, selective equality filters on some joined dimensions'
    /// attributes, occasionally a fact-measure range, the snowflake
    /// extension through `dim0`, or a GROUP BY over a dimension attribute.
    fn star_query(&mut self) -> SelectStmt {
        let dims = self.cfg.dims;
        let k = self.rng.gen_range(1..=dims);
        let mut pool: Vec<usize> = (0..dims).collect();
        let mut joined = Vec::with_capacity(k);
        for _ in 0..k {
            let i = self.rng.gen_range(0..pool.len());
            joined.push(pool.swap_remove(i));
        }
        joined.sort_unstable();

        let mut from = vec![TableRef::new(FACT)];
        let mut conditions = Vec::new();
        for &d in &joined {
            let dname = dim_name(d);
            from.push(TableRef::new(&dname));
            conditions.push(Condition::Join {
                left: ColumnRef::new(FACT, format!("f_dim{d}")),
                right: ColumnRef::new(&dname, format!("d{d}_id")),
            });
        }

        // Selective dimension filters: equality on the skewed attribute.
        let n_filters = self.rng.gen_range(1..=joined.len().min(2));
        for f in 0..n_filters {
            let d = joined[(f * 7919 + self.rng.gen_range(0..joined.len())) % joined.len()];
            let dname = dim_name(d);
            let attr = format!("d{d}_attr");
            let v = self.sample_value(&dname, &attr);
            conditions.push(Condition::Compare {
                column: ColumnRef::new(&dname, &attr),
                op: CmpOp::Eq,
                value: v,
            });
        }
        if self.rng.gen_bool(0.25) {
            conditions.push(self.selection(FACT, "f_val"));
        }
        // Snowflake arm: extend through dim0 to the sub-dimension.
        if self.cfg.snowflake && joined.contains(&0) && self.rng.gen_bool(0.5) {
            from.push(TableRef::new(SUBDIM));
            conditions.push(Condition::Join {
                left: ColumnRef::new(dim_name(0), "d0_sub"),
                right: ColumnRef::new(SUBDIM, "s_id"),
            });
            if self.rng.gen_bool(0.7) {
                let v = self.sample_value(SUBDIM, "s_attr");
                conditions.push(Condition::Compare {
                    column: ColumnRef::new(SUBDIM, "s_attr"),
                    op: CmpOp::Eq,
                    value: v,
                });
            }
        }

        let (items, group_by) = if self.rng.gen_bool(0.15) {
            let d = joined[self.rng.gen_range(0..joined.len())];
            let gcol = ColumnRef::new(dim_name(d), format!("d{d}_attr"));
            (
                vec![
                    SelectItem::Column(gcol.clone()),
                    SelectItem::Aggregate(AggFunc::Count, None),
                ],
                vec![gcol],
            )
        } else {
            (vec![SelectItem::Star], Vec::new())
        };
        SelectStmt {
            items,
            from,
            conditions,
            group_by,
            order_by: Vec::new(),
        }
    }
}

/// Generate `count` queries over an adversarial database of the given
/// regime. Deterministic under `(cfg.seed, regime)`: the stream is
/// independent of the data-generation RNG, so data and workload can be
/// rebuilt separately.
pub fn adversarial_queries(
    db: &Database,
    cfg: &AdversarialConfig,
    regime: Regime,
    count: usize,
) -> Vec<SelectStmt> {
    let cfg = cfg.sane();
    let seed = cfg
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(regime as u64 + 1);
    let mut g = QueryGen {
        db,
        cfg,
        rng: StdRng::seed_from_u64(seed),
    };
    (0..count)
        .map(|_| match regime {
            Regime::Star => g.star_query(),
            _ => g.single_table_query(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use query::{bind_statement, Statement};

    fn binds_all(db: &Database, queries: &[SelectStmt]) {
        for (i, q) in queries.iter().enumerate() {
            bind_statement(db, &Statement::Select(q.clone()))
                .unwrap_or_else(|e| panic!("query {i} failed to bind: {e}\n{q:?}"));
        }
    }

    #[test]
    fn every_regime_builds_and_binds() {
        let cfg = AdversarialConfig::tiny();
        for regime in Regime::ALL {
            let db = build_adversarial(&cfg, regime);
            let queries = adversarial_queries(&db, &cfg, regime, 30);
            assert_eq!(queries.len(), 30);
            binds_all(&db, &queries);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let cfg = AdversarialConfig::tiny();
        for regime in Regime::ALL {
            let d1 = build_adversarial(&cfg, regime);
            let d2 = build_adversarial(&cfg, regime);
            for id in d1.table_ids() {
                let (t1, t2) = (d1.try_table(id).unwrap(), d2.try_table(id).unwrap());
                assert_eq!(t1.row_count(), t2.row_count());
                for r in 0..t1.row_count() {
                    for c in 0..t1.schema().len() {
                        assert_eq!(t1.value(r, c), t2.value(r, c), "{regime} r{r} c{c}");
                    }
                }
            }
            let q1 = adversarial_queries(&d1, &cfg, regime, 20);
            let q2 = adversarial_queries(&d2, &cfg, regime, 20);
            assert_eq!(q1, q2, "{regime} queries must be seed-deterministic");
            let other = AdversarialConfig {
                seed: cfg.seed + 1,
                ..cfg.clone()
            };
            let q3 = adversarial_queries(&d1, &other, regime, 20);
            assert_ne!(q1, q3, "{regime} queries must vary with the seed");
        }
    }

    #[test]
    fn correlation_knob_controls_pair_agreement() {
        let base = AdversarialConfig {
            rows: 3_000,
            null_fraction: 0.0,
            ..AdversarialConfig::tiny()
        };
        let agreement = |rho: f64| -> f64 {
            let cfg = AdversarialConfig {
                correlation: rho,
                ..base.clone()
            };
            let db = build_adversarial(&cfg, Regime::Correlated);
            let t = db.table_by_name(FACTS).unwrap();
            let (a, b) = (
                t.schema().index_of("c_a").unwrap(),
                t.schema().index_of("c_b").unwrap(),
            );
            let same = (0..t.row_count())
                .filter(|&r| t.value(r, a) == t.value(r, b))
                .count();
            same as f64 / t.row_count() as f64
        };
        let low = agreement(0.0);
        let high = agreement(0.95);
        assert!(
            high > low + 0.3,
            "correlation knob had no effect: rho=0 → {low:.2}, rho=0.95 → {high:.2}"
        );
        assert!(high > 0.9, "rho=0.95 should agree almost always: {high:.2}");
    }

    #[test]
    fn star_schema_has_fact_and_dims_with_valid_fks() {
        let cfg = AdversarialConfig::tiny();
        let db = build_adversarial(&cfg, Regime::Star);
        let fact = db.table_by_name(FACT).unwrap();
        assert_eq!(fact.row_count(), cfg.rows);
        for i in 0..cfg.dims {
            let dim = db.table_by_name(&dim_name(i)).unwrap();
            assert_eq!(dim.row_count(), cfg.dim_rows);
            let fk = fact.schema().index_of(&format!("f_dim{i}")).unwrap();
            for r in 0..fact.row_count() {
                let Value::Int(v) = fact.value(r, fk) else {
                    panic!("non-int FK")
                };
                assert!((v as usize) < cfg.dim_rows, "dangling FK {v}");
            }
        }
        // Snowflake: dim0's sub-FK lands in subdim.
        let sub = db.table_by_name(SUBDIM).unwrap();
        let dim0 = db.table_by_name(&dim_name(0)).unwrap();
        let fk = dim0.schema().index_of("d0_sub").unwrap();
        for r in 0..dim0.row_count() {
            let Value::Int(v) = dim0.value(r, fk) else {
                panic!("non-int sub FK")
            };
            assert!((v as usize) < sub.row_count());
        }
    }

    #[test]
    fn filtered_columns_are_indexed() {
        // Without these, every single-table plan is the same seq scan and
        // the harness could not observe plan-choice consequences of
        // misestimation (nor would MNSA's sensitivity probe ever fire).
        let cfg = AdversarialConfig::tiny();
        let db = build_adversarial(&cfg, Regime::Zipf);
        let t = db.table_id(FACTS).unwrap();
        let leads: Vec<usize> = db.indexes_on(t).map(|i| i.leading_column()).collect();
        let schema = db.table(t).schema();
        assert!(leads.contains(&schema.index_of("c_a").unwrap()));
        assert!(leads.contains(&schema.index_of("c_c").unwrap()));

        let star = build_adversarial(&cfg, Regime::Star);
        let fact = star.table_id(FACT).unwrap();
        assert_eq!(star.indexes_on(fact).count(), cfg.dims);
        for i in 0..cfg.dims {
            let dim = star.table_id(&dim_name(i)).unwrap();
            assert_eq!(star.indexes_on(dim).count(), 2, "dim{i}");
        }
        let sub = star.table_id(SUBDIM).unwrap();
        assert_eq!(star.indexes_on(sub).count(), 1);
    }

    #[test]
    fn zipf_regime_is_skewed_and_uniform_is_not() {
        let cfg = AdversarialConfig {
            rows: 5_000,
            zipf_z: 2.5,
            ..AdversarialConfig::tiny()
        };
        let hot_share = |regime: Regime| -> f64 {
            let db = build_adversarial(&cfg, regime);
            let t = db.table_by_name(FACTS).unwrap();
            let a = t.schema().index_of("c_a").unwrap();
            let mut counts = std::collections::HashMap::new();
            for r in 0..t.row_count() {
                *counts.entry(t.value(r, a)).or_insert(0usize) += 1;
            }
            *counts.values().max().unwrap() as f64 / t.row_count() as f64
        };
        let uniform = hot_share(Regime::Uniform);
        let zipf = hot_share(Regime::Zipf);
        assert!(
            zipf > uniform * 3.0,
            "zipf hot value share {zipf:.3} not clearly above uniform {uniform:.3}"
        );
    }

    #[test]
    fn all_null_correlated_column_still_generates_valid_queries() {
        // Regression (edge case from the issue): null_fraction = 1 makes
        // c_b/c_d all NULL; the generator must neither panic nor emit a
        // NULL constant in a predicate.
        let cfg = AdversarialConfig {
            null_fraction: 1.0,
            ..AdversarialConfig::tiny()
        };
        let db = build_adversarial(&cfg, Regime::Correlated);
        let t = db.table_by_name(FACTS).unwrap();
        let b = t.schema().index_of("c_b").unwrap();
        assert!((0..t.row_count()).all(|r| t.value(r, b) == Value::Null));
        let queries = adversarial_queries(&db, &cfg, Regime::Correlated, 40);
        binds_all(&db, &queries);
        for q in &queries {
            for c in &q.conditions {
                match c {
                    Condition::Compare { value, .. } => assert_ne!(*value, Value::Null),
                    Condition::Between { low, high, .. } => {
                        assert_ne!(*low, Value::Null);
                        assert_ne!(*high, Value::Null);
                    }
                    Condition::Join { .. } => {}
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Regression harness for the datagen edge cases named in the
        /// issue: zero/one-row tables, alpha=0 uniform fallback, NaN and
        /// negative skew, full-NULL columns. Every combination must build
        /// a database whose queries all bind.
        #[test]
        fn degenerate_knobs_never_panic(
            (rows, domain) in (0usize..40, 0usize..6),
            z in prop_oneof![Just(f64::NAN), Just(-2.0), Just(0.0), 0.0..6.0],
            rho in prop_oneof![Just(-1.0), Just(2.0), 0.0..1.0],
            nulls in prop_oneof![Just(1.0), 0.0..1.0],
            (dims, dim_rows, snowflake) in (0usize..8, 1usize..8, any::<bool>()),
            seed in 0u64..1000,
        ) {
            let cfg = AdversarialConfig {
                rows, domain, zipf_z: z, correlation: rho,
                null_fraction: nulls, dims, dim_rows, snowflake, seed,
            };
            for regime in Regime::ALL {
                let db = build_adversarial(&cfg, regime);
                let queries = adversarial_queries(&db, &cfg, regime, 6);
                for q in &queries {
                    prop_assert!(
                        bind_statement(&db, &Statement::Select(q.clone())).is_ok(),
                        "{regime}: query failed to bind under {cfg:?}"
                    );
                }
            }
        }
    }
}
