//! Data and workload generation for the experiments.
//!
//! Reproduces the paper's experimental setup (§8.1):
//!
//! * **TPC-D with skew** — the paper modified the TPC-D dbgen to draw every
//!   column from a Zipfian distribution with parameter `z ∈ [0, 4]`, and to
//!   support a *mixed* mode assigning each column a random `z`. [`tpcd`]
//!   rebuilds that generator: `TPCD_0` (uniform), `TPCD_2`, `TPCD_4`, and
//!   `TPCD_MIX` databases at a configurable scale factor.
//! * **Rags-like workloads** — Slutz's Rags tool [15] generated stochastic
//!   SQL; [`rags`] is a seedable generator with the paper's three knobs:
//!   update percentage (0/25/50), complexity (Simple ≤ 2 tables /
//!   Complex ≤ 8 tables), and statement count, with names like `U25-S-1000`.
//! * **The 17 TPC-D benchmark queries** — [`tpcd_queries`] renders Q1–Q17 in
//!   the supported SPJ+GROUP BY subset (subqueries flattened) for the intro
//!   experiment and the `TPCD-ORIG` workload.

pub mod adversarial;
// Grandfathered under the CI panic-free gate: the TPC-D/Rags generators
// predate it and treat malformed schemas as programmer error. New datagen
// modules (e.g. `adversarial`) must stay unwrap/expect-free.
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub mod rags;
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub mod tpcd;
pub mod tpcd_queries;
pub mod workload_io;
pub mod zipf;

pub use adversarial::{
    adversarial_queries, build_adversarial, dim_name, AdversarialConfig, Regime, FACT, FACTS,
    SUBDIM,
};
pub use rags::{Complexity, RagsGenerator, WorkloadSpec};
pub use tpcd::{build_tpcd, create_tuned_indexes, standard_databases, TpcdConfig, ZipfSpec};
pub use tpcd_queries::tpcd_benchmark_queries;
pub use workload_io::{read_workload, workload_from_sql, workload_to_sql, write_workload};
pub use zipf::Zipf;
