//! Reading and writing workload files.
//!
//! The §6 offline tuning policy consumes "the workload the database system
//! experiences" — in practice a log of SQL statements. This module persists
//! workloads as plain `.sql` files (one statement per line, `--` comments
//! allowed) so generated workloads can be saved, edited by hand, and replayed
//! through the [`OfflineTuner`](../autostats/policy/struct.OfflineTuner.html).

use query::{parse_statement, render, ParseError, Statement};
use std::fs;
use std::io;
use std::path::Path;

/// Errors from reading a workload file.
#[derive(Debug)]
pub enum WorkloadIoError {
    Io(io::Error),
    /// Parse failure with the 1-based line number.
    Parse {
        line: usize,
        error: ParseError,
    },
}

impl std::fmt::Display for WorkloadIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadIoError::Io(e) => write!(f, "{e}"),
            WorkloadIoError::Parse { line, error } => {
                write!(f, "line {line}: {error}")
            }
        }
    }
}

impl std::error::Error for WorkloadIoError {}

impl From<io::Error> for WorkloadIoError {
    fn from(e: io::Error) -> Self {
        WorkloadIoError::Io(e)
    }
}

/// Serialize a workload to SQL text (one statement per line).
pub fn workload_to_sql(workload: &[Statement]) -> String {
    let mut out = String::new();
    for stmt in workload {
        out.push_str(&render(stmt));
        out.push('\n');
    }
    out
}

/// Write a workload to a `.sql` file.
pub fn write_workload(
    path: impl AsRef<Path>,
    workload: &[Statement],
) -> Result<(), WorkloadIoError> {
    fs::write(path, workload_to_sql(workload))?;
    Ok(())
}

/// Parse a workload from SQL text. Blank lines and `--` comment lines are
/// skipped.
pub fn workload_from_sql(text: &str) -> Result<Vec<Statement>, WorkloadIoError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        match parse_statement(line) {
            Ok(stmt) => out.push(stmt),
            Err(error) => return Err(WorkloadIoError::Parse { line: i + 1, error }),
        }
    }
    Ok(out)
}

/// Read a workload from a `.sql` file.
pub fn read_workload(path: impl AsRef<Path>) -> Result<Vec<Statement>, WorkloadIoError> {
    workload_from_sql(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rags::{Complexity, RagsGenerator, WorkloadSpec};
    use crate::tpcd::{build_tpcd, TpcdConfig};

    #[test]
    fn workload_roundtrips_through_sql_file() {
        let db = build_tpcd(&TpcdConfig {
            scale: 0.001,
            ..Default::default()
        });
        let spec = WorkloadSpec::new(30, Complexity::Complex, 40).with_seed(17);
        let workload = RagsGenerator::generate(&db, &spec);
        let text = workload_to_sql(&workload);
        let reloaded = workload_from_sql(&text).unwrap();
        assert_eq!(workload, reloaded);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "-- the morning batch\n\nSELECT * FROM t WHERE a < 5\n\n-- done\n";
        let w = workload_from_sql(text).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "SELECT * FROM t\nSELEC oops\n";
        match workload_from_sql(text) {
            Err(WorkloadIoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("autostats_wl_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("w.sql");
        let db = build_tpcd(&TpcdConfig {
            scale: 0.001,
            ..Default::default()
        });
        let spec = WorkloadSpec::new(0, Complexity::Simple, 10).with_seed(3);
        let workload = RagsGenerator::generate(&db, &spec);
        write_workload(&path, &workload).unwrap();
        let reloaded = read_workload(&path).unwrap();
        assert_eq!(workload, reloaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_workload("/nonexistent/nowhere.sql") {
            Err(WorkloadIoError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
