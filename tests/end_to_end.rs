//! End-to-end integration: the full pipeline over generated TPC-D data —
//! parse → bind → tune (MNSA) → optimize → execute, plus maintenance.

use autostats::manager::{AutoStatsManager, ManagerConfig};
use autostats::policy::CreationPolicy;
use autostats::MnsaConfig;
use datagen::{
    build_tpcd, create_tuned_indexes, tpcd_benchmark_queries, Complexity, RagsGenerator,
    TpcdConfig, WorkloadSpec, ZipfSpec,
};
use executor::StatementOutcome;
use query::{render, Statement};

fn small_db(z: ZipfSpec) -> storage::Database {
    build_tpcd(&TpcdConfig {
        scale: 0.002,
        zipf: z,
        seed: 77,
    })
}

#[test]
fn tpcd_queries_run_end_to_end_with_auto_tuning() {
    let mut mgr = AutoStatsManager::new(small_db(ZipfSpec::Mixed), ManagerConfig::default());
    for (i, q) in tpcd_benchmark_queries().into_iter().enumerate() {
        let out = mgr
            .execute(&Statement::Select(q))
            .unwrap_or_else(|e| panic!("Q{} failed: {e}", i + 1));
        match out {
            StatementOutcome::Query { estimated_cost, .. } => {
                assert!(estimated_cost > 0.0, "Q{} zero cost", i + 1)
            }
            _ => panic!("Q{} not a query", i + 1),
        }
    }
    // Tuning happened and left a bounded number of statistics.
    assert!(mgr.catalog().active_count() > 0);
    assert!(mgr.tuning_report().optimizer_calls > 17);
}

#[test]
fn rags_mixed_workload_runs_under_all_policies() {
    for policy in [
        CreationPolicy::Manual,
        CreationPolicy::CreateAllSyntactic,
        CreationPolicy::CreateAllCandidates,
        CreationPolicy::Mnsa(MnsaConfig::default()),
        CreationPolicy::Mnsa(MnsaConfig::default().with_drop_detection()),
    ] {
        let db = small_db(ZipfSpec::Fixed(1.0));
        let spec = WorkloadSpec::new(25, Complexity::Simple, 30).with_seed(3);
        let stmts = RagsGenerator::generate(&db, &spec);
        let mut mgr = AutoStatsManager::new(
            db,
            ManagerConfig {
                creation: policy,
                ..Default::default()
            },
        );
        for s in &stmts {
            mgr.execute(s)
                .unwrap_or_else(|e| panic!("{policy:?}: {e}\n{}", render(s)));
        }
        assert!(mgr.execution_work() > 0.0);
        if matches!(policy, CreationPolicy::Manual) {
            assert_eq!(mgr.catalog().total_count(), 0);
        }
    }
}

#[test]
fn query_results_are_stats_independent() {
    // Statistics change plans, never answers: executing the same workload
    // with no statistics and with full statistics must give identical
    // result row counts.
    let db = small_db(ZipfSpec::Fixed(2.0));
    let queries: Vec<Statement> = tpcd_benchmark_queries()
        .into_iter()
        .map(Statement::Select)
        .collect();

    let mut bare = AutoStatsManager::new(
        db.clone(),
        ManagerConfig {
            creation: CreationPolicy::Manual,
            ..Default::default()
        },
    );
    let mut tuned = AutoStatsManager::new(
        db,
        ManagerConfig {
            creation: CreationPolicy::CreateAllCandidates,
            ..Default::default()
        },
    );
    for (i, q) in queries.iter().enumerate() {
        let a = bare.execute(q).unwrap();
        let b = tuned.execute(q).unwrap();
        match (a, b) {
            (
                StatementOutcome::Query { output: oa, .. },
                StatementOutcome::Query { output: ob, .. },
            ) => {
                assert_eq!(
                    oa.row_count(),
                    ob.row_count(),
                    "Q{}: results differ with statistics",
                    i + 1
                );
                assert_eq!(oa.rows, ob.rows, "Q{}: rows differ", i + 1);
            }
            _ => panic!(),
        }
    }
}

#[test]
fn tuned_database_with_indexes_prefers_index_plans() {
    let mut db = small_db(ZipfSpec::Fixed(0.0));
    create_tuned_indexes(&mut db);
    let mut mgr = AutoStatsManager::new(db, ManagerConfig::default());
    // Highly selective key lookup: should use the o_orderkey index.
    let plan = mgr
        .explain_sql("SELECT * FROM orders WHERE o_orderkey = 5")
        .unwrap();
    mgr.execute_sql("SELECT * FROM orders WHERE o_orderkey = 5")
        .unwrap();
    let plan_after = mgr
        .explain_sql("SELECT * FROM orders WHERE o_orderkey = 5")
        .unwrap();
    assert!(
        plan.contains("IndexScan") || plan_after.contains("IndexScan"),
        "index never used:\nbefore: {plan}\nafter: {plan_after}"
    );
}

#[test]
fn heavy_update_traffic_triggers_maintenance_cycle() {
    let db = small_db(ZipfSpec::Fixed(0.0));
    let mut mgr = AutoStatsManager::new(
        db,
        ManagerConfig {
            maintenance: stats::MaintenancePolicy {
                update_fraction: 0.05,
                min_modified_rows: 5,
                max_updates: 1,
                drop_only_droplisted: true,
            },
            // Unconditional creation: the 20-row supplier table is too
            // small for MNSA's sensitivity probe to build anything, and
            // this test is about the maintenance cycle, not creation.
            creation: CreationPolicy::CreateAllSyntactic,
            auto_maintain: true,
            ..Default::default()
        },
    );
    // Query first so statistics exist.
    mgr.execute_sql("SELECT * FROM supplier WHERE s_acctbal > 0.0 AND s_nationkey = 3")
        .unwrap();
    // Hammer the supplier table with inserts.
    for i in 0..200 {
        mgr.execute_sql(&format!(
            "INSERT INTO supplier VALUES ({}, 'Supplier#x', 1, 10.0)",
            100_000 + i
        ))
        .unwrap();
    }
    // The maintenance cycle ran: the query created supplier statistics and
    // the insert traffic forced repeated staleness refreshes. The shared
    // counter itself keeps growing and is never reset; each refreshed
    // statistic instead carries the counter value at its rebuild as its
    // staleness baseline, and nothing remains stale at the end.
    let t = mgr.database().table_id("supplier").unwrap();
    let policy = stats::MaintenancePolicy {
        update_fraction: 0.05,
        min_modified_rows: 5,
        max_updates: 1,
        drop_only_droplisted: true,
    };
    assert!(mgr
        .catalog()
        .stale_statistics(mgr.database(), &policy)
        .is_empty());
    let counter = mgr.database().table(t).modification_counter();
    assert!(counter >= 200, "shared counter only grows, got {counter}");
    assert!(mgr
        .catalog()
        .built_on_table(t)
        .any(|s| s.update_count >= 1 && s.mods_at_build > 0));
}

#[test]
fn workload_execution_work_is_reproducible() {
    let db = small_db(ZipfSpec::Mixed);
    let spec = WorkloadSpec::new(0, Complexity::Complex, 20).with_seed(9);
    let stmts = RagsGenerator::generate(&db, &spec);
    let run = |db: storage::Database| {
        let mut mgr = AutoStatsManager::new(db, ManagerConfig::default());
        for s in &stmts {
            mgr.execute(s).unwrap();
        }
        mgr.execution_work()
    };
    let a = run(db.clone());
    let b = run(db);
    assert_eq!(a, b);
}
