//! Property tests of the memoized optimizer cache.
//!
//! The cache's contract is absolute: `optimize_cached` returns exactly what
//! `optimize` would return, for every query, statistics state, and injection
//! vector — hits included. Staleness is impossible *by construction* (the
//! key fingerprints the selectivity profile, i.e. the content of every
//! statistics read), and the attached mode's observer-driven eviction keeps
//! the entry set in step with catalog mutations. Both halves are checked
//! here against randomized queries, injections, and mutation sequences.

use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, ZipfSpec};
use optimizer::{OptimizeCache, OptimizeOptions, Optimizer};
use proptest::prelude::*;
use query::{bind_statement, BoundSelect, BoundStatement};
use rustc_hash::FxHashMap;
use stats::{StatDescriptor, StatsCatalog};
use std::sync::Arc;
use storage::Database;

fn test_db() -> Database {
    build_tpcd(&TpcdConfig {
        scale: 0.002,
        zipf: ZipfSpec::Mixed,
        seed: 13,
    })
}

fn queries(db: &Database) -> Vec<BoundSelect> {
    let mut gen = RagsGenerator::new(db, 77);
    (0..10)
        .map(|i| {
            let c = if i % 2 == 0 {
                Complexity::Simple
            } else {
                Complexity::Complex
            };
            let q = gen.gen_query(c);
            match bind_statement(db, &query::Statement::Select(q)).unwrap() {
                BoundStatement::Select(b) => b,
                _ => unreachable!(),
            }
        })
        .collect()
}

/// Assert a cached result equals a fresh optimization in every observable.
fn assert_identical(
    optimizer: &Optimizer,
    db: &Database,
    q: &BoundSelect,
    catalog: &StatsCatalog,
    options: &OptimizeOptions,
    cache: &OptimizeCache,
) {
    let cached = optimizer
        .optimize_cached(db, q, catalog.full_view(), options, cache)
        .unwrap();
    let fresh = optimizer
        .optimize(db, q, catalog.full_view(), options)
        .unwrap();
    assert_eq!(cached.cost, fresh.cost);
    assert!(cached.plan.same_tree(&fresh.plan));
    assert_eq!(cached.magic_variables, fresh.magic_variables);
    assert_eq!(cached.profile, fresh.profile);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Repeated cached calls — including guaranteed hits — always match a
    /// fresh optimization, across random injections.
    #[test]
    fn cached_equals_fresh_under_injections(
        qidx in 0usize..10,
        vals in prop::collection::vec(0.0005f64..0.9995, 8),
    ) {
        let db = test_db();
        let qs = queries(&db);
        let q = &qs[qidx];
        let catalog = StatsCatalog::new();
        let optimizer = Optimizer::default();
        let cache = OptimizeCache::new();

        let injected: FxHashMap<_, _> = q
            .predicate_ids()
            .into_iter()
            .zip(vals.iter().copied().cycle())
            .collect();
        let options = OptimizeOptions { injected };

        // Twice: the second call is a hit (same key), and must still be
        // indistinguishable from a fresh optimization.
        assert_identical(&optimizer, &db, q, &catalog, &options, &cache);
        assert_identical(&optimizer, &db, q, &catalog, &options, &cache);
        prop_assert!(cache.hits() >= 1, "second identical call must hit");
    }

    /// Interleaving catalog mutations with cached optimizations never yields
    /// a stale answer: after every create / drop-list / reactivate /
    /// physical-drop, the cached result still equals a fresh one.
    #[test]
    fn no_stale_plans_across_mutation_sequences(
        qidx in 0usize..10,
        ops in prop::collection::vec(0u8..4, 1..12),
    ) {
        let db = test_db();
        let qs = queries(&db);
        let q = &qs[qidx];
        let optimizer = Optimizer::default();
        let cache = Arc::new(OptimizeCache::new());
        let mut catalog = StatsCatalog::new();
        cache.attach(&mut catalog);

        // Mutation targets: single-column descriptors over the query's
        // relevant columns.
        let descs: Vec<StatDescriptor> = q
            .relevant_columns()
            .into_iter()
            .map(|(t, c)| StatDescriptor::single(t, c))
            .collect();
        prop_assume!(!descs.is_empty());

        let options = OptimizeOptions::default();
        assert_identical(&optimizer, &db, q, &catalog, &options, &cache);
        for (i, op) in ops.iter().enumerate() {
            let d = &descs[i % descs.len()];
            match op {
                0 => {
                    catalog.create_statistic(&db, d.clone()).unwrap();
                }
                1 => {
                    if let Some(id) = catalog.find_active(d) {
                        catalog.move_to_drop_list(id);
                    }
                }
                2 => {
                    if let Some(id) = catalog.find_built(d) {
                        catalog.reactivate(id);
                    }
                }
                _ => {
                    if let Some(id) = catalog.find_built(d) {
                        catalog.physically_drop(id);
                    }
                }
            }
            // The mutation may have changed the best plan; the cache must
            // track it exactly.
            assert_identical(&optimizer, &db, q, &catalog, &options, &cache);
        }
    }
}

#[test]
fn attached_cache_never_outlives_mutated_entries() {
    // Deterministic companion to the property test: every mutation kind
    // evicts the affected table's entries.
    let db = test_db();
    let qs = queries(&db);
    let optimizer = Optimizer::default();
    let cache = Arc::new(OptimizeCache::new());
    let mut catalog = StatsCatalog::new();
    cache.attach(&mut catalog);

    for q in &qs {
        optimizer
            .optimize_cached(
                &db,
                q,
                catalog.full_view(),
                &OptimizeOptions::default(),
                &cache,
            )
            .unwrap();
    }
    let filled = cache.len();
    assert!(filled > 0);

    let q0 = &qs[0];
    let (t, c) = q0
        .relevant_columns()
        .first()
        .copied()
        .expect("a relevant column");
    let id = catalog
        .create_statistic(&db, StatDescriptor::single(t, c))
        .unwrap();
    assert!(
        cache.len() < filled,
        "creating a statistic on a cached query's table must evict"
    );
    let after_create = cache.len();

    // Re-fill for q0, then drop-list: evicts again.
    optimizer
        .optimize_cached(
            &db,
            q0,
            catalog.full_view(),
            &OptimizeOptions::default(),
            &cache,
        )
        .unwrap();
    catalog.move_to_drop_list(id);
    assert_eq!(cache.len(), after_create, "drop-list move must evict");

    // Detached after Arc drop: catalog mutations stop evicting.
    let weak = Arc::downgrade(&cache);
    drop(cache);
    assert!(weak.upgrade().is_none());
    catalog.reactivate(id); // must not panic on the dead observer
}

#[test]
fn detached_cache_shares_across_catalogs() {
    // Two independent catalogs with identical content produce identical
    // profiles, so a detached cache serves both from one entry set.
    let db = test_db();
    let qs = queries(&db);
    let q = &qs[1];
    let optimizer = Optimizer::default();
    let cache = OptimizeCache::new();

    let catalog_a = StatsCatalog::new();
    let catalog_b = StatsCatalog::new();
    optimizer
        .optimize_cached(
            &db,
            q,
            catalog_a.full_view(),
            &OptimizeOptions::default(),
            &cache,
        )
        .unwrap();
    let misses_after_a = cache.misses();
    optimizer
        .optimize_cached(
            &db,
            q,
            catalog_b.full_view(),
            &OptimizeOptions::default(),
            &cache,
        )
        .unwrap();
    assert_eq!(cache.misses(), misses_after_a, "identical state must hit");
    assert_eq!(cache.hits(), 1);
}
