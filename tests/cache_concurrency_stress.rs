//! Concurrency stress test: threads interleaving cached optimization with
//! catalog mutations (create / drop-list / reactivate / physical drop).
//!
//! Invariants under fire:
//! * **no stale reads** — every `optimize_cached` answer, taken under a
//!   catalog read lock, equals a fresh `optimize` against the same locked
//!   state, no matter what mutators did before or after;
//! * **no deadlocks** — the lock order is catalog-then-cache on both the
//!   optimize path (catalog read → cache probe) and the mutation path
//!   (catalog write → observer eviction), so the test terminating at all is
//!   the assertion;
//! * **counters sum correctly** — every lookup is classified exactly once,
//!   so `hits + misses` equals the number of `optimize_cached` calls.

use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, ZipfSpec};
use optimizer::{OptimizeCache, OptimizeOptions, Optimizer};
use parking_lot::RwLock;
use query::{bind_statement, BoundSelect, BoundStatement};
use stats::{StatDescriptor, StatsCatalog};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use storage::Database;

const OPTIMIZER_THREADS: usize = 4;
const MUTATOR_THREADS: usize = 2;
const OPTIMIZE_ITERS: usize = 60;
const MUTATE_ITERS: usize = 40;

fn test_db() -> Database {
    build_tpcd(&TpcdConfig {
        scale: 0.002,
        zipf: ZipfSpec::Mixed,
        seed: 4,
    })
}

fn queries(db: &Database) -> Vec<BoundSelect> {
    let mut gen = RagsGenerator::new(db, 55);
    (0..8)
        .map(|i| {
            let c = if i % 2 == 0 {
                Complexity::Simple
            } else {
                Complexity::Complex
            };
            match bind_statement(db, &query::Statement::Select(gen.gen_query(c))).unwrap() {
                BoundStatement::Select(b) => b,
                _ => unreachable!(),
            }
        })
        .collect()
}

#[test]
fn optimize_and_mutate_interleaved() {
    let db = test_db();
    let qs = queries(&db);
    let descs: Vec<StatDescriptor> = qs
        .iter()
        .flat_map(|q| q.relevant_columns())
        .map(|(t, c)| StatDescriptor::single(t, c))
        .collect();
    assert!(!descs.is_empty());

    let cache = Arc::new(OptimizeCache::new());
    let mut catalog = StatsCatalog::new();
    cache.attach(&mut catalog);
    let catalog = RwLock::new(catalog);
    let optimizer = Optimizer::default();
    let lookups = AtomicU64::new(0);

    crossbeam::thread::scope(|s| {
        for tid in 0..OPTIMIZER_THREADS {
            let cache = &cache;
            let catalog = &catalog;
            let db = &db;
            let qs = &qs;
            let optimizer = &optimizer;
            let lookups = &lookups;
            s.spawn(move |_| {
                for i in 0..OPTIMIZE_ITERS {
                    let q = &qs[(tid * 31 + i) % qs.len()];
                    let guard = catalog.read();
                    let cached = optimizer
                        .optimize_cached(
                            db,
                            q,
                            guard.full_view(),
                            &OptimizeOptions::default(),
                            cache,
                        )
                        .unwrap();
                    lookups.fetch_add(1, Ordering::Relaxed);
                    // Fresh optimization under the SAME lock: any divergence
                    // is a stale cache read.
                    let fresh = optimizer
                        .optimize(db, q, guard.full_view(), &OptimizeOptions::default())
                        .unwrap();
                    assert_eq!(cached.cost, fresh.cost, "stale cost served");
                    assert!(cached.plan.same_tree(&fresh.plan), "stale plan served");
                    assert_eq!(cached.profile, fresh.profile, "stale profile served");
                }
            });
        }
        for tid in 0..MUTATOR_THREADS {
            let catalog = &catalog;
            let db = &db;
            let descs = &descs;
            s.spawn(move |_| {
                for i in 0..MUTATE_ITERS {
                    let d = &descs[(tid * 17 + i) % descs.len()];
                    let mut guard = catalog.write();
                    match i % 4 {
                        0 => {
                            guard.create_statistic(db, d.clone()).unwrap();
                        }
                        1 => {
                            if let Some(id) = guard.find_active(d) {
                                guard.move_to_drop_list(id);
                            }
                        }
                        2 => {
                            if let Some(id) = guard.find_built(d) {
                                guard.reactivate(id);
                            }
                        }
                        _ => {
                            if let Some(id) = guard.find_built(d) {
                                guard.physically_drop(id);
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("stress worker panicked");

    let counters = cache.counters();
    let total = lookups.load(Ordering::Relaxed);
    assert_eq!(
        counters.hits + counters.misses,
        total,
        "every lookup classified exactly once"
    );
    assert_eq!(total, (OPTIMIZER_THREADS * OPTIMIZE_ITERS) as u64);
    assert!(counters.hits > 0, "repeated queries should produce hits");
    assert!(
        counters.invalidations > 0,
        "mutations on cached tables should evict entries"
    );

    // The cache stays coherent after the storm: one more pass, serially.
    let guard = catalog.read();
    for q in &qs {
        let cached = optimizer
            .optimize_cached(
                &db,
                q,
                guard.full_view(),
                &OptimizeOptions::default(),
                &cache,
            )
            .unwrap();
        let fresh = optimizer
            .optimize(&db, q, guard.full_view(), &OptimizeOptions::default())
            .unwrap();
        assert_eq!(cached.cost, fresh.cost);
        assert!(cached.plan.same_tree(&fresh.plan));
    }
}
