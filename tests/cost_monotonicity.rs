//! Property test of the paper's core assumption (§4.1): *the
//! optimizer-estimated cost of an SPJ query is monotonic in the values of
//! the selectivity variables*. MNSA's correctness rests on this, so we
//! verify it holds for our optimizer by construction: for random queries and
//! random pairs of injected selectivity vectors ordered pointwise, the
//! estimated costs are ordered the same way.

use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, ZipfSpec};
use optimizer::{OptimizeOptions, Optimizer};
use proptest::prelude::*;
use query::{bind_statement, BoundSelect, BoundStatement};
use rustc_hash::FxHashMap;
use stats::StatsCatalog;
use storage::Database;

fn test_db() -> Database {
    build_tpcd(&TpcdConfig {
        scale: 0.001,
        zipf: ZipfSpec::Fixed(1.0),
        seed: 3,
    })
}

fn queries(db: &Database) -> Vec<BoundSelect> {
    let mut gen = RagsGenerator::new(db, 99);
    (0..12)
        .map(|i| {
            let c = if i % 2 == 0 {
                Complexity::Simple
            } else {
                Complexity::Complex
            };
            let q = gen.gen_query(c);
            match bind_statement(db, &query::Statement::Select(q)).unwrap() {
                BoundStatement::Select(b) => b,
                _ => unreachable!(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cost_monotone_in_selectivities(
        qidx in 0usize..12,
        base in prop::collection::vec(0.0005f64..0.9995, 12),
        bumps in prop::collection::vec(0.0f64..0.5, 12),
    ) {
        let db = test_db();
        let qs = queries(&db);
        let q = &qs[qidx];
        let vars = q.predicate_ids();
        prop_assume!(!vars.is_empty());
        let catalog = StatsCatalog::new();
        let optimizer = Optimizer::default();

        let low: FxHashMap<_, _> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, base[i % base.len()]))
            .collect();
        let mut high = low.clone();
        for (i, (_, val)) in high.iter_mut().enumerate() {
            *val = (*val + bumps[i % bumps.len()]).min(0.9995);
        }

        let c_low = optimizer
            .optimize(&db, q, catalog.full_view(), &OptimizeOptions { injected: low }).unwrap()
            .cost;
        let c_high = optimizer
            .optimize(&db, q, catalog.full_view(), &OptimizeOptions { injected: high }).unwrap()
            .cost;
        prop_assert!(
            c_low <= c_high * (1.0 + 1e-9),
            "cost not monotone: low={c_low} high={c_high} (query {qidx})"
        );
    }

    /// Injecting all variables at identical values is deterministic and the
    /// extremes bound the middle (the P_low <= P(s) <= P_high sandwich that
    /// justifies MNSA's probe).
    #[test]
    fn extremes_bound_intermediate(qidx in 0usize..12, mid in 0.001f64..0.999) {
        let db = test_db();
        let qs = queries(&db);
        let q = &qs[qidx];
        let vars = q.predicate_ids();
        prop_assume!(!vars.is_empty());
        let catalog = StatsCatalog::new();
        let optimizer = Optimizer::default();
        let eps = 0.0005;
        let cost_at = |v: f64| {
            optimizer
                .optimize(
                    &db,
                    q,
                    catalog.full_view(),
                    &OptimizeOptions::inject_all(&vars, v),
                ).unwrap()
                .cost
        };
        let lo = cost_at(eps);
        let hi = cost_at(1.0 - eps);
        let mid_cost = cost_at(mid.clamp(eps, 1.0 - eps));
        prop_assert!(lo <= mid_cost * (1.0 + 1e-9), "lo={lo} mid={mid_cost}");
        prop_assert!(mid_cost <= hi * (1.0 + 1e-9), "mid={mid_cost} hi={hi}");
    }
}
