//! Property-based tests of statistic construction invariants.

use proptest::prelude::*;
use stats::statistic::build_statistic;
use stats::{
    join_selectivity, BuildOptions, Histogram, HistogramKind, SampleSpec, StatDescriptor, StatId,
};
use storage::{ColumnDef, DataType, Schema, Table, TableId, Value};

fn table_from(cols: Vec<Vec<i64>>) -> Table {
    let n_cols = cols.len();
    let defs: Vec<ColumnDef> = (0..n_cols)
        .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int))
        .collect();
    let mut t = Table::new("t", Schema::new(defs));
    for r in 0..cols[0].len() {
        t.insert(cols.iter().map(|col| Value::Int(col[r])).collect())
            .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Prefix NDV is non-decreasing in prefix length (adding a column can
    /// only split combinations), i.e. prefix densities are non-increasing.
    #[test]
    fn prefix_densities_non_increasing(
        a in prop::collection::vec(0i64..20, 30..200),
        seed in 0u64..100,
    ) {
        let n = a.len();
        let b: Vec<i64> = (0..n as i64).map(|i| i % 7).collect();
        let c: Vec<i64> = (0..n as i64).map(|i| (i * 3) % 5).collect();
        let t = table_from(vec![a, b, c]);
        let stat = build_statistic(
            StatId(0),
            &t,
            StatDescriptor::multi(TableId(0), vec![0, 1, 2]),
            &BuildOptions::default(),
            seed,
            0,
        );
        prop_assert_eq!(stat.prefix_densities.len(), 3);
        for w in stat.prefix_densities.windows(2) {
            prop_assert!(
                w[1] <= w[0] + 1e-12,
                "densities must not increase: {:?}",
                stat.prefix_densities
            );
        }
        // NDV of the full prefix never exceeds the row count.
        prop_assert!(stat.prefix_ndv(3) <= t.row_count() as f64 + 1e-9);
    }

    /// Leading-column NDV from the histogram matches the first prefix NDV on
    /// full scans.
    #[test]
    fn leading_ndv_consistent(a in prop::collection::vec(-50i64..50, 10..300)) {
        let t = table_from(vec![a]);
        let stat = build_statistic(
            StatId(0),
            &t,
            StatDescriptor::single(TableId(0), 0),
            &BuildOptions::default(),
            0,
            0,
        );
        prop_assert!((stat.leading_ndv() - stat.prefix_ndv(1)).abs() < 1e-9);
    }

    /// Join selectivity is symmetric and bounded by the hotter side's
    /// heaviest value frequency.
    #[test]
    fn join_selectivity_symmetric(
        a in prop::collection::vec(0i64..30, 20..200),
        b in prop::collection::vec(0i64..30, 20..200),
    ) {
        let ha = Histogram::build(HistogramKind::MaxDiff, &to_values(&a), 16);
        let hb = Histogram::build(HistogramKind::MaxDiff, &to_values(&b), 16);
        let ab = join_selectivity(&ha, &hb);
        let ba = join_selectivity(&hb, &ha);
        prop_assert!((ab - ba).abs() < 1e-9, "not symmetric: {ab} vs {ba}");
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// A sampled statistic never reports NDV above the table size, and its
    /// null fraction stays in [0, 1].
    #[test]
    fn sampled_statistics_sane(
        vals in prop::collection::vec(0i64..1000, 50..400),
        frac in 0.05f64..0.9,
        seed in 0u64..50,
    ) {
        let t = table_from(vec![vals]);
        let stat = build_statistic(
            StatId(0),
            &t,
            StatDescriptor::single(TableId(0), 0),
            &BuildOptions {
                sample: SampleSpec::Fraction { fraction: frac, min_rows: 10 },
                ..Default::default()
            },
            seed,
            0,
        );
        prop_assert!(stat.leading_ndv() <= t.row_count() as f64 + 1e-9);
        prop_assert!((0.0..=1.0).contains(&stat.null_fraction));
        prop_assert!(stat.build_cost > 0.0);
    }
}

fn to_values(v: &[i64]) -> Vec<Value> {
    v.iter().map(|&i| Value::Int(i)).collect()
}

#[test]
fn join_selectivity_of_fk_join_matches_truth() {
    // PK side: unique 0..100. FK side: skewed toward low keys.
    let pk: Vec<Value> = (0..100).map(Value::Int).collect();
    let fk: Vec<Value> = (0..1000)
        .map(|i| Value::Int(if i % 3 == 0 { i % 100 } else { i % 10 }))
        .collect();
    let hp = Histogram::build(HistogramKind::MaxDiff, &pk, 32);
    let hf = Histogram::build(HistogramKind::MaxDiff, &fk, 32);
    let sel = join_selectivity(&hp, &hf);
    // True join output = 1000 rows (each FK matches exactly one PK), so the
    // true selectivity is 1000 / (100 * 1000) = 0.01.
    assert!((sel - 0.01).abs() < 0.005, "sel={sel}");
}
