//! Estimation-quality integration tests: the q-error of the optimizer's
//! root cardinality estimate, with and without statistics.
//!
//! The paper's premise ("in the absence of statistics, cost estimates can be
//! dramatically different") is quantified here: across a Rags workload,
//! statistics must substantially reduce the median q-error
//! `max(est, actual) / min(est, actual)` of the final result-size estimate.

use autostats::candidate_statistics;
use bench::experiments::cardbench::operator_q_errors;
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use executor::{execute_plan, execute_plan_traced};
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundSelect, BoundStatement};
use stats::{BuildOptions, StatDescriptor, StatsCatalog};
use storage::Database;

fn q_error(est: f64, actual: f64) -> f64 {
    let est = est.max(0.5);
    let actual = actual.max(0.5);
    (est / actual).max(actual / est)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn workload(db: &Database, n: usize, seed: u64) -> Vec<BoundSelect> {
    let spec = WorkloadSpec::new(0, Complexity::Complex, n).with_seed(seed);
    RagsGenerator::generate(db, &spec)
        .iter()
        .filter_map(|s| match bind_statement(db, s).unwrap() {
            BoundStatement::Select(q) => Some(q),
            _ => None,
        })
        .collect()
}

/// Root-cardinality q-errors for each query under the given catalog.
fn q_errors(db: &Database, catalog: &StatsCatalog, queries: &[BoundSelect]) -> Vec<f64> {
    let optimizer = Optimizer::default();
    queries
        .iter()
        .map(|q| {
            let r = optimizer
                .optimize(db, q, catalog.full_view(), &OptimizeOptions::default())
                .unwrap();
            let out = execute_plan(db, q, &r.plan, &optimizer.params).unwrap();
            q_error(r.plan.est_rows, out.row_count() as f64)
        })
        .collect()
}

#[test]
fn statistics_reduce_median_q_error_on_skewed_data() {
    let db = build_tpcd(&TpcdConfig {
        scale: 0.003,
        zipf: ZipfSpec::Mixed,
        seed: 11,
    });
    let queries = workload(&db, 40, 11);

    let bare = StatsCatalog::new();
    let without = q_errors(&db, &bare, &queries);

    let mut tuned = StatsCatalog::new();
    for q in &queries {
        for d in candidate_statistics(q) {
            tuned.create_statistic(&db, d).unwrap();
        }
    }
    let with = q_errors(&db, &tuned, &queries);

    let m_without = median(without);
    let m_with = median(with);
    assert!(
        m_with < m_without,
        "statistics did not improve median q-error: {m_with:.2} vs {m_without:.2}"
    );
    assert!(
        m_with < 10.0,
        "median q-error with full statistics too large: {m_with:.2}"
    );
}

#[test]
fn mnsa_estimates_close_to_full_statistics() {
    // MNSA builds fewer statistics; its estimation quality must stay in the
    // same ballpark as create-all (that is the whole point of the paper).
    use autostats::{MnsaConfig, MnsaEngine};
    let db = build_tpcd(&TpcdConfig {
        scale: 0.003,
        zipf: ZipfSpec::Fixed(2.0),
        seed: 23,
    });
    let queries = workload(&db, 30, 23);

    let mut full = StatsCatalog::new();
    for q in &queries {
        for d in candidate_statistics(q) {
            full.create_statistic(&db, d).unwrap();
        }
    }
    let engine = MnsaEngine::new(MnsaConfig::default());
    let mut mnsa = StatsCatalog::new();
    for q in &queries {
        engine.run_query(&db, &mut mnsa, q).unwrap();
    }
    assert!(mnsa.active_count() <= full.active_count());

    let m_full = median(q_errors(&db, &full, &queries));
    let m_mnsa = median(q_errors(&db, &mnsa, &queries));
    assert!(
        m_mnsa <= m_full * 3.0 + 1.0,
        "MNSA q-error {m_mnsa:.2} far worse than create-all {m_full:.2}"
    );
}

/// Per-operator q-errors (from the executor's `exec.op.*` spans) pooled
/// over all queries under `catalog`.
fn per_operator_q_errors(
    db: &Database,
    catalog: &StatsCatalog,
    queries: &[BoundSelect],
) -> Vec<f64> {
    let optimizer = Optimizer::default();
    let mut all = Vec::new();
    for q in queries {
        let r = optimizer
            .optimize(db, q, catalog.full_view(), &OptimizeOptions::default())
            .unwrap();
        let tracer = obsv::Tracer::enabled();
        execute_plan_traced(db, q, &r.plan, &optimizer.params, &tracer).unwrap();
        all.extend(operator_q_errors(&tracer.flush()));
    }
    all
}

/// Correlated column pairs break the independence assumption that
/// single-column histograms multiply through. Joint 2-D histograms on the
/// pairs must cut the *per-operator* median q-error — not just the root
/// estimate — because the refinement applies at the access path where the
/// conjunction is evaluated.
#[test]
fn joint_histograms_cut_per_operator_q_error_on_correlated_pairs() {
    let cfg = datagen::AdversarialConfig {
        rows: 3_000,
        correlation: 0.95,
        null_fraction: 0.0,
        ..datagen::AdversarialConfig::tiny()
    };
    let db = datagen::build_adversarial(&cfg, datagen::Regime::Correlated);
    let facts = db.table_id(datagen::adversarial::FACTS).unwrap();
    let schema_of = |name: &str| {
        db.table_by_name(datagen::adversarial::FACTS)
            .unwrap()
            .schema()
            .index_of(name)
            .unwrap()
    };
    let (a, b, c, d) = (
        schema_of("c_a"),
        schema_of("c_b"),
        schema_of("c_c"),
        schema_of("c_d"),
    );

    // Keep only the pair probes: queries constraining both columns of one
    // correlated pair, the shape where independence fails.
    let queries: Vec<BoundSelect> =
        datagen::adversarial_queries(&db, &cfg, datagen::Regime::Correlated, 120)
            .into_iter()
            .filter_map(
                |q| match bind_statement(&db, &query::Statement::Select(q)).unwrap() {
                    BoundStatement::Select(bq) => Some(bq),
                    _ => None,
                },
            )
            .filter(|q| {
                let cols: Vec<usize> = q.selections.iter().map(|p| p.column.column).collect();
                (cols.contains(&a) && cols.contains(&b)) || (cols.contains(&c) && cols.contains(&d))
            })
            .collect();
    assert!(
        queries.len() >= 20,
        "workload generator stopped producing pair probes ({} of 120)",
        queries.len()
    );

    // Both catalogs hold the same single-column histograms; the joint
    // catalog additionally builds 2-D histograms over the two pairs.
    let mut single = StatsCatalog::new();
    for col in [a, b, c, d] {
        single
            .create_statistic(&db, StatDescriptor::single(facts, col))
            .unwrap();
    }
    let mut joint =
        StatsCatalog::new().with_build_options(BuildOptions::default().with_joint_histograms());
    for col in [a, b, c, d] {
        joint
            .create_statistic(&db, StatDescriptor::single(facts, col))
            .unwrap();
    }
    joint
        .create_statistic(&db, StatDescriptor::multi(facts, vec![a, b]))
        .unwrap();
    joint
        .create_statistic(&db, StatDescriptor::multi(facts, vec![c, d]))
        .unwrap();

    let m_single = median(per_operator_q_errors(&db, &single, &queries));
    let m_joint = median(per_operator_q_errors(&db, &joint, &queries));
    assert!(
        m_joint < m_single,
        "joint histograms did not cut per-operator median q-error: \
         joint {m_joint:.2} vs single {m_single:.2}"
    );
    // And the improvement must be substantive, not a rounding artifact: on
    // rho = 0.95 pairs the independence assumption is off by roughly the
    // second marginal (an order of magnitude here).
    assert!(
        m_joint < m_single * 0.75,
        "joint-histogram improvement too small: {m_joint:.2} vs {m_single:.2}"
    );
}

#[test]
fn skew_hurts_magic_numbers_more_than_statistics() {
    // The gap between no-stats and full-stats estimation should widen with
    // skew — that is why the paper generates Zipfian data at all.
    let gap = |z: f64| -> f64 {
        let db = build_tpcd(&TpcdConfig {
            scale: 0.002,
            zipf: ZipfSpec::Fixed(z),
            seed: 31,
        });
        let queries = workload(&db, 25, 31);
        let bare = StatsCatalog::new();
        let mut tuned = StatsCatalog::new();
        for q in &queries {
            for d in candidate_statistics(q) {
                tuned.create_statistic(&db, d).unwrap();
            }
        }
        median(q_errors(&db, &bare, &queries)) / median(q_errors(&db, &tuned, &queries))
    };
    let uniform_gap = gap(0.0);
    let skewed_gap = gap(3.0);
    assert!(
        skewed_gap >= uniform_gap * 0.8,
        "skew should not shrink the statistics advantage much: uniform {uniform_gap:.2}, skewed {skewed_gap:.2}"
    );
    assert!(skewed_gap > 1.0, "statistics must help on skewed data");
}
