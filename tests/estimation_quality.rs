//! Estimation-quality integration tests: the q-error of the optimizer's
//! root cardinality estimate, with and without statistics.
//!
//! The paper's premise ("in the absence of statistics, cost estimates can be
//! dramatically different") is quantified here: across a Rags workload,
//! statistics must substantially reduce the median q-error
//! `max(est, actual) / min(est, actual)` of the final result-size estimate.

use autostats::candidate_statistics;
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use executor::execute_plan;
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundSelect, BoundStatement};
use stats::StatsCatalog;
use storage::Database;

fn q_error(est: f64, actual: f64) -> f64 {
    let est = est.max(0.5);
    let actual = actual.max(0.5);
    (est / actual).max(actual / est)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn workload(db: &Database, n: usize, seed: u64) -> Vec<BoundSelect> {
    let spec = WorkloadSpec::new(0, Complexity::Complex, n).with_seed(seed);
    RagsGenerator::generate(db, &spec)
        .iter()
        .filter_map(|s| match bind_statement(db, s).unwrap() {
            BoundStatement::Select(q) => Some(q),
            _ => None,
        })
        .collect()
}

/// Root-cardinality q-errors for each query under the given catalog.
fn q_errors(db: &Database, catalog: &StatsCatalog, queries: &[BoundSelect]) -> Vec<f64> {
    let optimizer = Optimizer::default();
    queries
        .iter()
        .map(|q| {
            let r = optimizer
                .optimize(db, q, catalog.full_view(), &OptimizeOptions::default())
                .unwrap();
            let out = execute_plan(db, q, &r.plan, &optimizer.params).unwrap();
            q_error(r.plan.est_rows, out.row_count() as f64)
        })
        .collect()
}

#[test]
fn statistics_reduce_median_q_error_on_skewed_data() {
    let db = build_tpcd(&TpcdConfig {
        scale: 0.003,
        zipf: ZipfSpec::Mixed,
        seed: 11,
    });
    let queries = workload(&db, 40, 11);

    let bare = StatsCatalog::new();
    let without = q_errors(&db, &bare, &queries);

    let mut tuned = StatsCatalog::new();
    for q in &queries {
        for d in candidate_statistics(q) {
            tuned.create_statistic(&db, d).unwrap();
        }
    }
    let with = q_errors(&db, &tuned, &queries);

    let m_without = median(without);
    let m_with = median(with);
    assert!(
        m_with < m_without,
        "statistics did not improve median q-error: {m_with:.2} vs {m_without:.2}"
    );
    assert!(
        m_with < 10.0,
        "median q-error with full statistics too large: {m_with:.2}"
    );
}

#[test]
fn mnsa_estimates_close_to_full_statistics() {
    // MNSA builds fewer statistics; its estimation quality must stay in the
    // same ballpark as create-all (that is the whole point of the paper).
    use autostats::{MnsaConfig, MnsaEngine};
    let db = build_tpcd(&TpcdConfig {
        scale: 0.003,
        zipf: ZipfSpec::Fixed(2.0),
        seed: 23,
    });
    let queries = workload(&db, 30, 23);

    let mut full = StatsCatalog::new();
    for q in &queries {
        for d in candidate_statistics(q) {
            full.create_statistic(&db, d).unwrap();
        }
    }
    let engine = MnsaEngine::new(MnsaConfig::default());
    let mut mnsa = StatsCatalog::new();
    for q in &queries {
        engine.run_query(&db, &mut mnsa, q).unwrap();
    }
    assert!(mnsa.active_count() <= full.active_count());

    let m_full = median(q_errors(&db, &full, &queries));
    let m_mnsa = median(q_errors(&db, &mnsa, &queries));
    assert!(
        m_mnsa <= m_full * 3.0 + 1.0,
        "MNSA q-error {m_mnsa:.2} far worse than create-all {m_full:.2}"
    );
}

#[test]
fn skew_hurts_magic_numbers_more_than_statistics() {
    // The gap between no-stats and full-stats estimation should widen with
    // skew — that is why the paper generates Zipfian data at all.
    let gap = |z: f64| -> f64 {
        let db = build_tpcd(&TpcdConfig {
            scale: 0.002,
            zipf: ZipfSpec::Fixed(z),
            seed: 31,
        });
        let queries = workload(&db, 25, 31);
        let bare = StatsCatalog::new();
        let mut tuned = StatsCatalog::new();
        for q in &queries {
            for d in candidate_statistics(q) {
                tuned.create_statistic(&db, d).unwrap();
            }
        }
        median(q_errors(&db, &bare, &queries)) / median(q_errors(&db, &tuned, &queries))
    };
    let uniform_gap = gap(0.0);
    let skewed_gap = gap(3.0);
    assert!(
        skewed_gap >= uniform_gap * 0.8,
        "skew should not shrink the statistics advantage much: uniform {uniform_gap:.2}, skewed {skewed_gap:.2}"
    );
    assert!(skewed_gap > 1.0, "statistics must help on skewed data");
}
