//! Property-based round-trip tests of the SQL parser/renderer over randomly
//! constructed ASTs: `parse(render(stmt)) == stmt`.

use proptest::prelude::*;
use query::ast::OrderKey;
use query::{
    parse_statement, render, AggFunc, CmpOp, ColumnRef, Condition, DeleteStmt, InsertStmt,
    SelectItem, SelectStmt, Statement, TableRef, UpdateStmt,
};
use storage::Value;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        ![
            "select", "from", "where", "group", "by", "and", "between", "insert", "into", "values",
            "update", "set", "delete", "as", "date", "null", "count", "sum", "avg", "min", "max",
        ]
        .contains(&s.as_str())
    })
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1000i64..1000, 1u32..100).prop_map(|(m, d)| Value::Float(m as f64 / d as f64)),
        "[a-zA-Z' ]{0,12}".prop_map(Value::Str),
        (-10000i32..10000).prop_map(Value::Date),
        Just(Value::Null),
    ]
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (prop::option::of(ident()), ident()).prop_map(|(q, c)| ColumnRef {
        qualifier: q,
        column: c,
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        (
            column_ref(),
            cmp_op(),
            literal().prop_filter("no null cmp", |v| !v.is_null())
        )
            .prop_map(|(column, op, value)| Condition::Compare { column, op, value }),
        (column_ref(), -100i64..100, 0i64..100).prop_map(|(column, lo, w)| Condition::Between {
            column,
            low: Value::Int(lo),
            high: Value::Int(lo + w),
        }),
        (column_ref(), column_ref()).prop_map(|(left, right)| Condition::Join { left, right }),
    ]
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        Just(SelectItem::Star),
        column_ref().prop_map(SelectItem::Column),
        (
            prop_oneof![
                Just(AggFunc::Count),
                Just(AggFunc::Sum),
                Just(AggFunc::Avg),
                Just(AggFunc::Min),
                Just(AggFunc::Max)
            ],
            prop::option::of(column_ref())
        )
            .prop_map(|(f, c)| SelectItem::Aggregate(f, c)),
    ]
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), prop::option::of(ident())).prop_map(|(t, a)| TableRef { table: t, alias: a })
}

fn order_key() -> impl Strategy<Value = OrderKey> {
    (column_ref(), any::<bool>()).prop_map(|(column, descending)| OrderKey { column, descending })
}

fn select_stmt() -> impl Strategy<Value = Statement> {
    (
        prop::collection::vec(select_item(), 1..4),
        prop::collection::vec(table_ref(), 1..4),
        prop::collection::vec(condition(), 0..4),
        prop::collection::vec(column_ref(), 0..3),
        prop::collection::vec(order_key(), 0..3),
    )
        .prop_map(|(items, from, conditions, group_by, order_by)| {
            Statement::Select(SelectStmt {
                items,
                from,
                conditions,
                group_by,
                order_by,
            })
        })
}

fn statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        select_stmt(),
        (ident(), prop::collection::vec(literal(), 1..5))
            .prop_map(|(table, values)| Statement::Insert(InsertStmt { table, values })),
        (
            ident(),
            ident(),
            literal().prop_filter("set value non-null str ok", |_| true),
            prop::collection::vec(condition(), 0..3)
        )
            .prop_map(|(table, set_column, set_value, conditions)| {
                Statement::Update(UpdateStmt {
                    table,
                    set_column,
                    set_value,
                    conditions,
                })
            }),
        (ident(), prop::collection::vec(condition(), 0..3))
            .prop_map(|(table, conditions)| Statement::Delete(DeleteStmt { table, conditions })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn render_parse_roundtrip(stmt in statement()) {
        let sql = render(&stmt);
        match parse_statement(&sql) {
            Ok(reparsed) => prop_assert_eq!(stmt, reparsed, "round-trip mismatch for: {}", sql),
            Err(e) => prop_assert!(false, "rendered SQL failed to parse: {e}\n{}", sql),
        }
    }
}
