//! Integration tests of the paper's central claims, over generated data:
//!
//! * MNSA's sensitivity test is sound: when it creates nothing, the plan
//!   obtained with *all* candidate statistics is t-Optimizer-Cost
//!   equivalent to the plan obtained without them (the definition of the
//!   existing set containing an essential set, §4.1).
//! * MNSA never builds more than the candidate set, and what it skips is
//!   genuinely skippable cheaply.
//! * Shrinking Set output is an essential set for a whole workload.

use autostats::{
    candidate_statistics, shrinking_set, Equivalence, MnsaConfig, MnsaEngine, Termination,
};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundSelect, BoundStatement};
use stats::StatsCatalog;
use std::collections::HashSet;
use storage::Database;

fn db(z: f64, seed: u64) -> Database {
    build_tpcd(&TpcdConfig {
        scale: 0.002,
        zipf: ZipfSpec::Fixed(z),
        seed,
    })
}

fn execute_workload(db: &Database, catalog: &StatsCatalog, workload: &[BoundStatement]) -> f64 {
    let mut db = db.clone();
    executor::WorkloadRunner::default()
        .run(&mut db, catalog.full_view(), workload)
        .unwrap()
        .total_work
}

fn workload_queries(db: &Database, spec: &WorkloadSpec) -> Vec<BoundSelect> {
    RagsGenerator::generate(db, spec)
        .iter()
        .filter_map(|s| match bind_statement(db, s).unwrap() {
            BoundStatement::Select(q) => Some(q),
            _ => None,
        })
        .collect()
}

/// The soundness property of the MNSA termination test.
#[test]
fn mnsa_convergence_implies_t_equivalence_with_full_candidates() {
    let optimizer = Optimizer::default();
    let t = 20.0;
    for seed in [1u64, 2, 3] {
        let db = db(2.0, seed);
        let spec = WorkloadSpec::new(0, Complexity::Simple, 15).with_seed(seed);
        for q in workload_queries(&db, &spec) {
            let engine = MnsaEngine::new(MnsaConfig {
                t_percent: t,
                ..Default::default()
            });
            let mut catalog = StatsCatalog::new();
            let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
            if outcome.terminated_by != Termination::CostConverged {
                continue;
            }
            // Plan/cost with MNSA's chosen statistics.
            let with_mnsa = optimizer
                .optimize(&db, &q, catalog.full_view(), &OptimizeOptions::default())
                .unwrap();
            // Now build ALL candidates and re-optimize.
            for d in candidate_statistics(&q) {
                catalog.create_statistic(&db, d).unwrap();
            }
            let with_all = optimizer
                .optimize(&db, &q, catalog.full_view(), &OptimizeOptions::default())
                .unwrap();
            assert!(
                Equivalence::TCost(t).equivalent(&with_mnsa, &with_all),
                "MNSA declared convergence but full candidates changed cost \
                 {:.1} -> {:.1} (seed {seed})",
                with_mnsa.cost,
                with_all.cost,
            );
        }
    }
}

#[test]
fn mnsa_builds_subset_of_candidates() {
    let db = db(3.0, 5);
    let spec = WorkloadSpec::new(0, Complexity::Complex, 25).with_seed(5);
    let engine = MnsaEngine::new(MnsaConfig::default());
    let mut catalog = StatsCatalog::new();
    for q in workload_queries(&db, &spec) {
        let candidates: HashSet<_> = engine.candidates(&q).into_iter().collect();
        let outcome = engine.run_query(&db, &mut catalog, &q).unwrap();
        for id in outcome.created {
            let d = &catalog.statistic(id).unwrap().descriptor;
            assert!(
                candidates.contains(d),
                "MNSA created a non-candidate statistic {d:?}"
            );
        }
    }
}

#[test]
fn shrinking_set_yields_workload_essential_set() {
    let db = db(2.0, 9);
    let spec = WorkloadSpec::new(0, Complexity::Simple, 12).with_seed(9);
    let workload = workload_queries(&db, &spec);
    let optimizer = Optimizer::default();
    let equiv = Equivalence::ExecutionTree;

    // Superset: all candidates of all queries.
    let mut catalog = StatsCatalog::new();
    for q in &workload {
        for d in candidate_statistics(q) {
            catalog.create_statistic(&db, d).unwrap();
        }
    }
    let initial = catalog.active_ids();
    let out = shrinking_set(
        &db,
        &mut catalog,
        &optimizer,
        &workload,
        &initial,
        equiv,
        false,
    )
    .unwrap();

    // Definition 2: equivalent to C for every query…
    let all: HashSet<_> = initial.iter().copied().collect();
    let keep: HashSet<_> = out.essential.iter().copied().collect();
    let ignore: HashSet<_> = all.difference(&keep).copied().collect();
    for (i, q) in workload.iter().enumerate() {
        let full = optimizer
            .optimize(&db, q, catalog.full_view(), &OptimizeOptions::default())
            .unwrap();
        let shrunk = optimizer
            .optimize(&db, q, catalog.view(&ignore), &OptimizeOptions::default())
            .unwrap();
        assert!(
            equiv.equivalent(&full, &shrunk),
            "query {i}: shrunk set not equivalent"
        );
    }
    // …and minimal.
    for &s in &out.essential {
        let mut worse = ignore.clone();
        worse.insert(s);
        let mut changed = false;
        for q in &workload {
            let a = optimizer
                .optimize(&db, q, catalog.view(&ignore), &OptimizeOptions::default())
                .unwrap();
            let b = optimizer
                .optimize(&db, q, catalog.view(&worse), &OptimizeOptions::default())
                .unwrap();
            if !equiv.equivalent(&a, &b) {
                changed = true;
                break;
            }
        }
        assert!(changed, "{s} is removable — result not minimal");
    }
}

#[test]
fn mnsad_rerun_cost_increase_is_bounded() {
    // The Table 1 companion claim: after MNSA/D drops statistics, re-running
    // the workload costs at most a few percent more. We allow a loose bound
    // here (the paper saw <= 6%) since scale is tiny.
    let db = db(4.0, 13);
    let spec = WorkloadSpec::new(25, Complexity::Complex, 30).with_seed(13);
    let stmts = RagsGenerator::generate(&db, &spec);
    let bound: Vec<BoundStatement> = stmts
        .iter()
        .map(|s| bind_statement(&db, s).unwrap())
        .collect();
    let queries: Vec<BoundSelect> = bound
        .iter()
        .filter_map(|s| s.as_select().cloned())
        .collect();

    let mnsa = MnsaEngine::new(MnsaConfig::default());
    let mut cat_a = StatsCatalog::new();
    for q in &queries {
        mnsa.run_query(&db, &mut cat_a, q).unwrap();
    }
    let mnsad = MnsaEngine::new(MnsaConfig::default().with_drop_detection());
    let mut cat_b = StatsCatalog::new();
    for q in &queries {
        mnsad.run_query(&db, &mut cat_b, q).unwrap();
    }

    let exec_a = execute_workload(&db, &cat_a, &bound);
    let exec_b = execute_workload(&db, &cat_b, &bound);
    let increase = (exec_b - exec_a) / exec_a * 100.0;
    assert!(
        increase <= 25.0,
        "MNSA/D rerun cost increase {increase:.1}% is way out of band"
    );
}
