//! Plan-shape integration tests: the optimizer must respond to statistics
//! the way the paper's narrative assumes (missing statistics → magic
//! numbers → misestimates → different, usually worse plans).

use datagen::{build_tpcd, create_tuned_indexes, TpcdConfig, ZipfSpec};
use optimizer::{Operator, OptimizeOptions, Optimizer, PlanNode};
use query::{bind_statement, parse_statement, BoundSelect, BoundStatement, PredicateId};
use stats::{StatDescriptor, StatsCatalog};
use storage::{ColumnDef, DataType, Database, Schema, Value};

fn bind(db: &Database, sql: &str) -> BoundSelect {
    match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
        BoundStatement::Select(q) => q,
        _ => panic!(),
    }
}

fn ops(plan: &PlanNode) -> Vec<&'static str> {
    plan.nodes().iter().map(|n| n.op.name()).collect()
}

/// orders(big) with an index on the join key; customer(small).
fn indexed_db() -> Database {
    let mut db = Database::new();
    let customer = db
        .create_table(
            "customer",
            Schema::new(vec![
                ColumnDef::new("c_custkey", DataType::Int),
                ColumnDef::new("c_segment", DataType::Int),
            ]),
        )
        .unwrap();
    let orders = db
        .create_table(
            "orders",
            Schema::new(vec![
                ColumnDef::new("o_orderkey", DataType::Int),
                ColumnDef::new("o_custkey", DataType::Int),
                ColumnDef::new("o_total", DataType::Int),
            ]),
        )
        .unwrap();
    for i in 0..500i64 {
        // segment 9 is rare (1%), segment 0 is common.
        let seg = if i % 100 == 0 { 9 } else { 0 };
        db.table_mut(customer)
            .insert(vec![Value::Int(i), Value::Int(seg)])
            .unwrap();
    }
    for i in 0..20_000i64 {
        db.table_mut(orders)
            .insert(vec![
                Value::Int(i),
                Value::Int(i % 500),
                Value::Int(i % 1000),
            ])
            .unwrap();
    }
    db.create_index("idx_orders_custkey", orders, vec![1])
        .unwrap();
    db
}

/// The canonical plan flip: a selective predicate (known from statistics)
/// makes an index nested-loop join the winner; the magic number (0.1 for
/// equality — 10x the truth) keeps the plan on a hash join.
#[test]
fn statistics_flip_hash_join_to_index_nl() {
    let db = indexed_db();
    let q = bind(
        &db,
        "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND c_segment = 9",
    );
    let optimizer = Optimizer::default();

    let empty = StatsCatalog::new();
    let without = optimizer
        .optimize(&db, &q, empty.full_view(), &OptimizeOptions::default())
        .unwrap();
    assert_eq!(
        without.magic_variables,
        vec![PredicateId::Selection(0), PredicateId::JoinEdge(0)]
    );

    let mut cat = StatsCatalog::new();
    let customer = db.table_id("customer").unwrap();
    let orders = db.table_id("orders").unwrap();
    cat.create_statistic(&db, StatDescriptor::single(customer, 0))
        .unwrap();
    cat.create_statistic(&db, StatDescriptor::single(customer, 1))
        .unwrap();
    cat.create_statistic(&db, StatDescriptor::single(orders, 1))
        .unwrap();
    let with = optimizer
        .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
        .unwrap();

    assert!(with.magic_variables.is_empty());
    assert!(
        ops(&with.plan).contains(&"IndexNLJoin"),
        "selective outer should use the index: {}",
        with.plan
    );
    assert!(
        !without.plan.same_tree(&with.plan),
        "statistics should have changed the plan:\nwithout:\n{}\nwith:\n{}",
        without.plan,
        with.plan
    );
}

/// Forcing the outer side huge via injection must abandon the index NL plan
/// (the optimizer is sensitive to the variable MNSA perturbs).
#[test]
fn injected_selectivity_controls_join_method() {
    let db = indexed_db();
    let q = bind(
        &db,
        "SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND c_segment = 9",
    );
    let optimizer = Optimizer::default();
    let cat = StatsCatalog::new();
    let vars = q.predicate_ids();

    let low = optimizer
        .optimize(
            &db,
            &q,
            cat.full_view(),
            &OptimizeOptions::inject_all(&vars, 0.0005),
        )
        .unwrap();
    let high = optimizer
        .optimize(
            &db,
            &q,
            cat.full_view(),
            &OptimizeOptions::inject_all(&vars, 0.9995),
        )
        .unwrap();
    assert!(low.cost < high.cost);
    assert!(
        !low.plan.same_tree(&high.plan),
        "P_low and P_high should differ here:\nlow:\n{}\nhigh:\n{}",
        low.plan,
        high.plan
    );
}

#[test]
fn order_by_adds_sort_node_on_top() {
    let db = indexed_db();
    let q = bind(
        &db,
        "SELECT * FROM customer WHERE c_segment = 9 ORDER BY c_custkey DESC",
    );
    let optimizer = Optimizer::default();
    let cat = StatsCatalog::new();
    let r = optimizer
        .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
        .unwrap();
    assert!(matches!(r.plan.op, Operator::Sort { .. }));
    assert_eq!(r.plan.children.len(), 1);
    // Sort cost is included.
    assert!(r.plan.est_cost > r.plan.children[0].est_cost);
}

/// ORDER BY must not create magic variables or affect the probe set.
#[test]
fn order_by_does_not_add_selectivity_variables() {
    let db = indexed_db();
    let with_order = bind(
        &db,
        "SELECT * FROM customer WHERE c_segment = 9 ORDER BY c_custkey",
    );
    let without = bind(&db, "SELECT * FROM customer WHERE c_segment = 9");
    assert_eq!(with_order.predicate_ids(), without.predicate_ids());
}

/// The DP must find the obviously right join order in a chain: joining the
/// two filtered small sides before touching the big middle table.
#[test]
fn join_order_reacts_to_filtered_cardinalities() {
    let mut db = Database::new();
    let a = db
        .create_table(
            "a",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ]),
        )
        .unwrap();
    let b = db
        .create_table(
            "b",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("k2", DataType::Int),
            ]),
        )
        .unwrap();
    let c = db
        .create_table(
            "c",
            Schema::new(vec![
                ColumnDef::new("k2", DataType::Int),
                ColumnDef::new("w", DataType::Int),
            ]),
        )
        .unwrap();
    for i in 0..5000i64 {
        db.table_mut(a)
            .insert(vec![Value::Int(i % 100), Value::Int(i)])
            .unwrap();
    }
    for i in 0..100i64 {
        db.table_mut(b)
            .insert(vec![Value::Int(i), Value::Int(i % 10)])
            .unwrap();
    }
    for i in 0..10i64 {
        db.table_mut(c)
            .insert(vec![Value::Int(i), Value::Int(i)])
            .unwrap();
    }
    let q = bind(&db, "SELECT * FROM a, b, c WHERE a.k = b.k AND b.k2 = c.k2");
    let optimizer = Optimizer::default();
    let cat = StatsCatalog::new();
    let r = optimizer
        .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
        .unwrap();
    // Whatever the exact tree, the first join must not be a cartesian
    // product and the plan must cover all three relations.
    assert_eq!(r.plan.nodes().iter().filter(|n| n.op.is_scan()).count(), 3);
    for n in r.plan.nodes() {
        if let Operator::NestedLoopJoin { edges } = &n.op {
            assert!(
                !edges.is_empty(),
                "cartesian product in a connected query:\n{}",
                r.plan
            );
        }
    }
}

/// same_tree distinguishes IndexNLJoin inner sides and Sort keys.
#[test]
fn tree_equality_covers_new_operators() {
    let db = indexed_db();
    let optimizer = Optimizer::default();
    let cat = StatsCatalog::new();
    let q1 = bind(&db, "SELECT * FROM customer ORDER BY c_custkey");
    let q2 = bind(&db, "SELECT * FROM customer ORDER BY c_custkey DESC");
    let p1 = optimizer
        .optimize(&db, &q1, cat.full_view(), &OptimizeOptions::default())
        .unwrap();
    let p2 = optimizer
        .optimize(&db, &q2, cat.full_view(), &OptimizeOptions::default())
        .unwrap();
    assert!(
        !p1.plan.same_tree(&p2.plan),
        "sort direction is part of the execution tree"
    );
}

/// Where each selection predicate of `q` is applied in `plan`: the relation
/// ordinal of the scan (or index-NL inner side) that carries it, or None if
/// the predicate does not appear anywhere in the tree.
fn selection_sites(plan: &PlanNode, q: &BoundSelect) -> Vec<Option<usize>> {
    let mut sites: Vec<Option<usize>> = vec![None; q.selections.len()];
    for n in plan.nodes() {
        let (rel, applied): (usize, Vec<usize>) = match &n.op {
            Operator::SeqScan { rel, preds, .. } => (*rel, preds.clone()),
            Operator::IndexScan {
                rel,
                seek_preds,
                residual,
                ..
            } => (
                *rel,
                seek_preds.iter().chain(residual.iter()).copied().collect(),
            ),
            Operator::IndexNLJoin {
                inner_rel,
                inner_preds,
                ..
            } => (*inner_rel, inner_preds.clone()),
            _ => continue,
        };
        for i in applied {
            assert!(sites[i].is_none(), "selection {i} applied twice");
            sites[i] = Some(rel);
        }
    }
    sites
}

/// On a star schema, every dimension filter must be applied at that
/// dimension's access path (below its join), never lost or floated to the
/// root — and the scan's cardinality estimate must reflect it.
#[test]
fn star_dimension_filters_are_applied_below_their_joins() {
    let cfg = datagen::AdversarialConfig::tiny();
    let db = datagen::build_adversarial(&cfg, datagen::Regime::Star);
    let q = bind(
        &db,
        "SELECT * FROM fact, dim0, dim1 \
         WHERE fact.f_dim0 = dim0.d0_id AND fact.f_dim1 = dim1.d1_id \
         AND dim0.d0_attr = 2 AND dim1.d1_flag = 1",
    );
    let optimizer = Optimizer::default();

    // Statistics on every referenced column, so estimates are data-driven.
    let mut cat = StatsCatalog::new();
    for d in autostats::single_column_candidates(&q) {
        cat.create_statistic(&db, d).unwrap();
    }
    let r = optimizer
        .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
        .unwrap();

    let sites = selection_sites(&r.plan, &q);
    for (i, pred) in q.selections.iter().enumerate() {
        assert_eq!(
            sites[i],
            Some(pred.column.relation),
            "selection {i} not applied at relation {} in:\n{}",
            pred.column.relation,
            r.plan
        );
    }
    // The filtered dimension's access path must already account for the
    // filter: its estimated output is below the table's row count.
    for n in r.plan.nodes() {
        if let Operator::SeqScan { rel, preds, .. } = &n.op {
            if !preds.is_empty() {
                let rows = db.try_table(q.table_of(*rel)).unwrap().row_count() as f64;
                assert!(
                    n.est_rows < rows,
                    "filtered scan of relation {rel} estimates {} of {rows} rows:\n{}",
                    n.est_rows,
                    r.plan
                );
            }
        }
    }
    // Joins never sit below a filter: the root of a star SPJ plan is a join.
    assert!(
        !r.plan.op.is_scan(),
        "multi-way join cannot be a bare scan:\n{}",
        r.plan
    );
}

/// Scans under any join in `plan`'s subtree.
fn scan_count(plan: &PlanNode) -> usize {
    plan.nodes().iter().filter(|n| n.op.is_scan()).count()
}

/// The subset-DP must admit bushy trees: with two highly selective join
/// pairs (A⋈B and C⋈D) bridged by a non-selective edge (B–C), joining the
/// two small pair-results is strictly cheaper than any left-deep order,
/// which would drag a large three-relation intermediate through the bridge.
/// Selectivities are injected so the instance is exact and catalog-free.
#[test]
fn bushy_tree_wins_when_cheaper_than_left_deep() {
    let mut db = Database::new();
    for (name, key_cols) in [
        ("ta", vec!["a_k"]),
        ("tb", vec!["b_k", "b_l"]),
        ("tc", vec!["c_l", "c_r"]),
        ("td", vec!["d_r"]),
    ] {
        let cols = key_cols
            .iter()
            .map(|c| ColumnDef::new(*c, DataType::Int))
            .collect();
        let t = db.create_table(name, Schema::new(cols)).unwrap();
        for i in 0..1000i64 {
            let width = db.table(t).schema().len();
            db.table_mut(t).insert(vec![Value::Int(i); width]).unwrap();
        }
    }
    let q = bind(
        &db,
        "SELECT * FROM ta, tb, tc, td \
         WHERE ta.a_k = tb.b_k AND tb.b_l = tc.c_l AND tc.c_r = td.d_r",
    );
    // Pair edges A–B and C–D are needle-selective; the bridge B–C is not.
    let mut options = OptimizeOptions::default();
    for (i, edge) in q.join_edges.iter().enumerate() {
        let sel = if edge.connects(1, 2) { 1.0 } else { 1e-5 };
        options.injected.insert(PredicateId::JoinEdge(i), sel);
    }
    let optimizer = Optimizer::default();
    let cat = StatsCatalog::new();
    let r = optimizer
        .optimize(&db, &q, cat.full_view(), &options)
        .unwrap();

    let bushy = r.plan.nodes().iter().any(|n| {
        n.children.len() == 2 && scan_count(&n.children[0]) >= 2 && scan_count(&n.children[1]) >= 2
    });
    assert!(
        bushy,
        "DP settled on a left-deep tree for a bushy-cheaper instance:\n{}",
        r.plan
    );

    // Cross-check the premise: the best purely left-deep cost really is
    // higher. A left-deep tree must materialize a connected 3-relation
    // intermediate; both candidates ({A,B,C} and {B,C,D}) flow ~10k rows
    // into the final join, while the bushy top join sees two ~10-row sides.
    assert!(r.cost.is_finite() && r.cost > 0.0);
}

/// Statistics on a tuned TPC-D database never make the estimated cost
/// profile invalid: every selectivity stays in [0, 1] and every plan cost is
/// finite and positive across all 17 benchmark queries.
#[test]
fn tpcd_profiles_always_valid() {
    let mut db = build_tpcd(&TpcdConfig {
        scale: 0.002,
        zipf: ZipfSpec::Fixed(4.0),
        seed: 5,
    });
    create_tuned_indexes(&mut db);
    let mut cat = StatsCatalog::new();
    let optimizer = Optimizer::default();
    for q in datagen::tpcd_benchmark_queries() {
        let BoundStatement::Select(b) = bind_statement(&db, &query::Statement::Select(q)).unwrap()
        else {
            panic!()
        };
        for d in autostats::candidate_statistics(&b) {
            cat.create_statistic(&db, d).unwrap();
        }
        let r = optimizer
            .optimize(&db, &b, cat.full_view(), &OptimizeOptions::default())
            .unwrap();
        assert!(r.cost.is_finite() && r.cost > 0.0);
        for id in b.predicate_ids() {
            let v = r.profile.value(id);
            assert!((0.0..=1.0).contains(&v), "{id} = {v}");
        }
    }
}
