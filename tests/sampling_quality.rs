//! Sampling-quality integration tests: the §2 remarks about sampling-based
//! statistics construction, demonstrated end-to-end.

use stats::statistic::build_statistic;
use stats::{BuildOptions, SampleSpec, StatDescriptor, StatId};
use storage::{ColumnDef, DataType, Schema, Table, TableId, Value};

/// A table whose `clustered` column is correlated with physical position
/// (values come in runs of 50 rows) and whose `shuffled` column has the same
/// distribution but scattered placement.
fn clustered_table() -> Table {
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            ColumnDef::new("clustered", DataType::Int),
            ColumnDef::new("shuffled", DataType::Int),
        ]),
    );
    let n = 5000i64;
    for i in 0..n {
        let clustered = i / 50; // 100 distinct values, one per run
        let shuffled = (i * 2654435761) % 100; // same 100 values, scattered
        t.insert(vec![Value::Int(clustered), Value::Int(shuffled)])
            .unwrap();
    }
    t
}

fn build(table: &Table, col: usize, sample: SampleSpec, seed: u64) -> stats::Statistic {
    build_statistic(
        StatId(0),
        table,
        StatDescriptor::single(TableId(0), col),
        &BuildOptions {
            sample,
            ..Default::default()
        },
        seed,
        0,
    )
}

#[test]
fn row_sampling_estimates_clustered_ndv_well() {
    let t = clustered_table();
    let s = build(
        &t,
        0,
        SampleSpec::Fraction {
            fraction: 0.1,
            min_rows: 100,
        },
        1,
    );
    // True NDV is 100; a 10% row-level sample should land close.
    let ndv = s.leading_ndv();
    assert!((60.0..=160.0).contains(&ndv), "row-sample ndv={ndv}");
}

#[test]
fn block_sampling_biased_on_clustered_columns() {
    // The §2 caveat: block-level samples of position-correlated columns see
    // whole runs of identical values, so the distinct count per sampled row
    // is far lower than a row-level sample would see.
    let t = clustered_table();
    let blocks = SampleSpec::Blocks {
        fraction: 0.1,
        block_rows: 50,
        min_rows: 100,
    };
    let rows = SampleSpec::Fraction {
        fraction: 0.1,
        min_rows: 100,
    };
    let block_stat = build(&t, 0, blocks, 1);
    let row_stat = build(&t, 0, rows, 1);
    assert!(
        block_stat.leading_ndv() < row_stat.leading_ndv() / 2.0,
        "block ndv {} should be far below row ndv {}",
        block_stat.leading_ndv(),
        row_stat.leading_ndv()
    );

    // On the scattered column the two sampling modes agree much better.
    let block_shuffled = build(&t, 1, blocks, 1);
    let row_shuffled = build(&t, 1, rows, 1);
    let ratio = block_shuffled.leading_ndv() / row_shuffled.leading_ndv();
    assert!(
        (0.5..=2.0).contains(&ratio),
        "shuffled-column ratio {ratio} out of band"
    );
}

#[test]
fn per_statistic_samples_are_independent() {
    // §2: building all statistics from a *single* shared sample can create
    // spurious correlation. Our catalog seeds every statistic's sample
    // independently; two statistics on the same column with different ids
    // draw different rows.
    let t = clustered_table();
    let spec = SampleSpec::Fraction {
        fraction: 0.05,
        min_rows: 50,
    };
    let a = spec.pick_rows(t.row_count(), 1);
    let b = spec.pick_rows(t.row_count(), 2);
    assert_ne!(a, b, "different seeds must draw different samples");
}

#[test]
fn sampled_statistics_cost_less_than_full_scans() {
    let t = clustered_table();
    let full = build(&t, 0, SampleSpec::FullScan, 1);
    let sampled = build(
        &t,
        0,
        SampleSpec::Fraction {
            fraction: 0.05,
            min_rows: 50,
        },
        1,
    );
    let block = build(
        &t,
        0,
        SampleSpec::Blocks {
            fraction: 0.05,
            block_rows: 50,
            min_rows: 50,
        },
        1,
    );
    assert!(sampled.build_cost < full.build_cost / 5.0);
    assert!(block.build_cost < full.build_cost / 5.0);
}
