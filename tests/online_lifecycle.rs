//! Integration tests for the online statistics lifecycle (`autod`).
//!
//! The contracts under test, end to end through the public crate APIs:
//!
//! * **Paused daemon ≡ offline tuning** — a `LifecycleCore` ticked once with
//!   an unconstrained budget over a monitored workload produces exactly the
//!   catalog `OfflineTuner::tune` produces on the same sample;
//! * **staleness boundaries** — the `max(min_modified_rows, update_fraction
//!   × rows)` rule is *strictly greater*: a tick at exactly the threshold
//!   refreshes nothing, one more modification refreshes everything on the
//!   table; an empty table falls back to `min_modified_rows`;
//! * **random interleavings** (proptest) — any mix of queries, DML, and
//!   ticks through a live [`autod::OnlineService`] panics nowhere, keeps
//!   estimated costs finite and non-negative, and publishes epoch
//!   generations monotonically;
//! * **concurrency smoke** — four query threads race the daemon; every
//!   query is observed, every thread sees non-decreasing generations, and
//!   the daemon records no error.

use autod::{AutodConfig, LifecycleCore, MonitorConfig, OnlineService, WorkloadMonitor};
use autostats::{AutoStatsManager, CreationPolicy, ManagerConfig, OfflineTuner};
use executor::StatementOutcome;
use proptest::prelude::*;
use query::{bind_statement, parse_statement, BoundSelect, BoundStatement};
use stats::{MaintenancePolicy, StatDescriptor, StatsCatalog};
use storage::{ColumnDef, DataType, Database, Schema, TableId, Value};

/// The paper's Example-2 join shape — the workload for which MNSA provably
/// builds statistics (single-table selections converge without any).
const JOIN_SQL: &str = "SELECT e.empid, d.dname FROM employees e, departments d \
                        WHERE e.deptid = d.deptid AND e.age < 30 AND e.salary > 200";
const JOIN2_SQL: &str = "SELECT e.empid, d.dname FROM employees e, departments d \
                         WHERE e.deptid = d.deptid AND e.salary > 240";
const SINGLE_SQL: &str = "SELECT empid FROM employees WHERE age < 25";

fn example2_db(employee_rows: i64) -> Database {
    let mut db = Database::new();
    let emp = db
        .create_table(
            "employees",
            Schema::new(vec![
                ColumnDef::new("empid", DataType::Int),
                ColumnDef::new("deptid", DataType::Int),
                ColumnDef::new("age", DataType::Int),
                ColumnDef::new("salary", DataType::Int),
            ]),
        )
        .unwrap();
    let dept = db
        .create_table(
            "departments",
            Schema::new(vec![
                ColumnDef::new("deptid", DataType::Int),
                ColumnDef::new("dname", DataType::Str),
            ]),
        )
        .unwrap();
    for i in 0..employee_rows {
        let salary = if i % 100 == 0 { 250 } else { i % 200 };
        db.table_mut(emp)
            .insert(vec![
                Value::Int(i),
                Value::Int(i % 20),
                Value::Int(20 + (i % 50)),
                Value::Int(salary),
            ])
            .unwrap();
    }
    for d in 0..20i64 {
        db.table_mut(dept)
            .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
            .unwrap();
    }
    #[allow(deprecated)]
    db.table_mut(emp).reset_modification_counter();
    #[allow(deprecated)]
    db.table_mut(dept).reset_modification_counter();
    db
}

fn bind_select(db: &Database, sql: &str) -> BoundSelect {
    let stmt = parse_statement(sql).unwrap();
    match bind_statement(db, &stmt).unwrap() {
        BoundStatement::Select(q) => q,
        other => panic!("expected a select, bound {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Paused daemon ≡ offline tuning
// ---------------------------------------------------------------------------

#[test]
fn paused_daemon_one_tick_equals_offline_tune() {
    let db = example2_db(3000);
    let queries = [JOIN_SQL, JOIN2_SQL, SINGLE_SQL];

    // Online: the monitor observes the workload, then one unconstrained
    // tick (shrink on every tick) drains it.
    let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
    for (i, sql) in queries.iter().enumerate() {
        monitor.observe(&bind_select(&db, sql), i as u64);
    }
    let mut core = LifecycleCore::new(
        StatsCatalog::new(),
        AutodConfig {
            budget_per_tick: f64::INFINITY,
            shrink_every: 1,
            ..AutodConfig::default()
        },
    );
    let report = core.tick(&db, &mut monitor).unwrap();
    assert_eq!(report.queries_tuned, queries.len());
    assert!(!report.budget_exhausted);

    // Offline: tune from scratch on the identical sample.
    let sample: Vec<BoundSelect> = queries.iter().map(|sql| bind_select(&db, sql)).collect();
    let mut offline = StatsCatalog::new();
    OfflineTuner::default()
        .tune(&db, &mut offline, &sample)
        .unwrap();

    assert!(offline.total_count() > 0, "workload must build statistics");
    assert_eq!(core.catalog().snapshot(), offline.snapshot());
    // The published epoch carries the same catalog.
    assert_eq!(core.epochs().load().catalog.snapshot(), offline.snapshot());
}

// ---------------------------------------------------------------------------
// Staleness boundaries, through a real refresh tick
// ---------------------------------------------------------------------------

fn insert_rows(db: &mut Database, t: TableId, n: u64) {
    for i in 0..n {
        db.table_mut(t)
            .insert(vec![
                Value::Int(i as i64),
                Value::Int(0),
                Value::Int(30),
                Value::Int(0),
            ])
            .unwrap();
    }
}

/// A core with one statistic built on `employees`, plus the table id.
fn core_with_employee_stat(rows: i64) -> (Database, TableId, LifecycleCore) {
    let db = example2_db(rows);
    let t = db.table_id("employees").unwrap();
    let mut catalog = StatsCatalog::new();
    catalog
        .create_statistic(&db, StatDescriptor::single(t, 2))
        .unwrap();
    let core = LifecycleCore::new(catalog, AutodConfig::default());
    (db, t, core)
}

#[test]
fn tick_at_exactly_min_modified_rows_refreshes_nothing() {
    // 1000 rows → threshold = max(500, 200) = 500.
    let (mut db, t, mut core) = core_with_employee_stat(1000);
    let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
    insert_rows(&mut db, t, 500);
    let report = core.tick(&db, &mut monitor).unwrap();
    assert_eq!(report.refreshed, 0, "exactly the threshold is still fresh");
    assert!(report.published_generation.is_none());

    insert_rows(&mut db, t, 1);
    let report = core.tick(&db, &mut monitor).unwrap();
    assert_eq!(report.refreshed, 1, "one past the threshold is stale");
    assert!(report.refresh_work > 0.0);
    assert_eq!(report.published_generation, Some(1));
}

#[test]
fn twenty_percent_threshold_moves_with_the_table() {
    // 10_000 rows → the fraction term dominates and grows as rows arrive.
    let (mut db, t, mut core) = core_with_employee_stat(10_000);
    let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
    // 2481 inserts: rows = 12_481 → threshold 2496 ≥ mods, still fresh.
    insert_rows(&mut db, t, 2481);
    assert_eq!(
        MaintenancePolicy::default().threshold(db.table(t).row_count()),
        2496
    );
    let report = core.tick(&db, &mut monitor).unwrap();
    assert_eq!(report.refreshed, 0);
    // 120 more outruns the moving threshold.
    insert_rows(&mut db, t, 120);
    let report = core.tick(&db, &mut monitor).unwrap();
    assert_eq!(report.refreshed, 1);
}

#[test]
fn empty_table_falls_back_to_min_modified_rows() {
    let (mut db, t, mut core) = core_with_employee_stat(0);
    let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
    insert_rows(&mut db, t, 500);
    let report = core.tick(&db, &mut monitor).unwrap();
    assert_eq!(report.refreshed, 0);
    insert_rows(&mut db, t, 1);
    let report = core.tick(&db, &mut monitor).unwrap();
    assert_eq!(report.refreshed, 1);
}

// ---------------------------------------------------------------------------
// Random interleavings (proptest)
// ---------------------------------------------------------------------------

fn service(rows: i64, budget: f64) -> OnlineService {
    let mgr = AutoStatsManager::new(
        example2_db(rows),
        ManagerConfig {
            creation: CreationPolicy::Manual,
            auto_maintain: false,
            ..ManagerConfig::default()
        },
    );
    OnlineService::start(
        mgr.serve(),
        AutodConfig {
            budget_per_tick: budget,
            shrink_every: 3,
            ..AutodConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of queries, DML, and ticks: nothing panics, costs
    /// stay finite and non-negative, generations never go backwards.
    #[test]
    fn random_interleavings_keep_invariants(ops in prop::collection::vec(0u8..6, 1..14)) {
        let svc = service(1200, 40_000.0);
        let handle = svc.handle(1);
        let mut last_generation = svc.generation();
        for op in ops {
            match op {
                0 => {
                    let out = handle.run_sql(JOIN_SQL).unwrap();
                    let StatementOutcome::Query { estimated_cost, .. } = out else {
                        panic!("select produced a non-query outcome");
                    };
                    prop_assert!(estimated_cost.is_finite() && estimated_cost >= 0.0);
                }
                1 => { handle.run_sql(JOIN2_SQL).unwrap(); }
                2 => { handle.run_sql(SINGLE_SQL).unwrap(); }
                3 => { handle.run_sql("DELETE FROM employees WHERE empid < 40").unwrap(); }
                4 => { handle.run_sql("UPDATE employees SET age = 41 WHERE deptid = 3").unwrap(); }
                _ => {
                    svc.tick_wait().unwrap();
                    let g = svc.generation();
                    prop_assert!(g >= last_generation, "generation regressed: {g} < {last_generation}");
                    last_generation = g;
                }
            }
        }
        let (_, report) = svc.shutdown().unwrap();
        prop_assert!(report.error.is_none());
        prop_assert!(report.generation >= last_generation);
    }
}

// ---------------------------------------------------------------------------
// Concurrency smoke
// ---------------------------------------------------------------------------

#[test]
fn four_query_threads_race_the_daemon() {
    const THREADS: usize = 4;
    const REPS: usize = 6;
    let svc = service(3000, f64::INFINITY);

    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let handle = svc.handle(tid as u64 + 1);
            s.spawn(move || {
                let mut last = handle.generation();
                for rep in 0..REPS {
                    let sql = match (tid + rep) % 3 {
                        0 => JOIN_SQL,
                        1 => JOIN2_SQL,
                        _ => SINGLE_SQL,
                    };
                    let out = handle.run_sql(sql).unwrap();
                    assert!(matches!(out, StatementOutcome::Query { .. }));
                    let g = handle.generation();
                    assert!(g >= last, "thread {tid} saw generation regress");
                    last = g;
                }
            });
        }
        // The daemon ticks while the workload is in flight.
        for _ in 0..4 {
            svc.tick_wait().unwrap();
        }
    });
    // Drain whatever arrived after the last in-flight tick.
    svc.tick_wait().unwrap();

    let (db, report) = svc.shutdown().unwrap();
    assert!(db.table_id("employees").is_some());
    assert!(report.error.is_none(), "daemon error: {:?}", report.error);
    assert_eq!(report.observed, (THREADS * REPS) as u64);
    assert!(
        report.catalog.total_count() > 0,
        "join workload builds stats"
    );
    assert!(report.generation >= 1);
}
