//! Property-based tests of the log-linear latency histogram (proptest):
//! the relative-error bound against exact sorted-sample order statistics,
//! exact associativity/commutativity of merges, the empty/single-sample
//! conventions, and determinism of window rollups built from sample deltas.

use obsv::{LatencyHistogram, LatencySample, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

/// Latency-shaped values: spread across many orders of magnitude so both
/// the exact (< 64) and log-linear bucket regimes are exercised.
fn latency_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..64,                   // exact buckets
            64u64..100_000,             // log-linear, microsecond-ish
            100_000u64..10_000_000_000, // milliseconds to seconds
            Just(u64::MAX),             // topmost bucket
        ],
        0..300,
    )
}

fn build(values: &[u64]) -> LatencyHistogram {
    let h = LatencyHistogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// The exact sample quantile under the histogram's own rank convention:
/// the `ceil(q·n)`-th smallest value, rank clamped to `[1, n]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reported quantile is ≥ the exact sample quantile and
    /// overshoots it by at most `RELATIVE_ERROR_BOUND` relatively.
    #[test]
    fn quantiles_obey_the_relative_error_bound(values in latency_values()) {
        prop_assume!(!values.is_empty());
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = h.quantile(q);
            prop_assert!(got >= exact, "q={q}: {got} underestimates {exact}");
            prop_assert!(
                (got - exact) as f64 <= exact as f64 * RELATIVE_ERROR_BOUND + 1e-9,
                "q={q}: {got} overshoots {exact} beyond the bound"
            );
        }
        // min/max accumulators are exact, not bucket-rounded.
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Merging is exactly commutative: A+B and B+A agree bit for bit (the
    /// snapshot derives `Eq` over buckets, counts, wrapping sums, min, max).
    #[test]
    fn merge_is_commutative(a in latency_values(), b in latency_values()) {
        let (ha, hb) = (build(&a), build(&b));
        let ab = LatencyHistogram::new();
        ab.merge_from(&ha);
        ab.merge_from(&hb);
        let ba = LatencyHistogram::new();
        ba.merge_from(&hb);
        ba.merge_from(&ha);
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
    }

    /// Merging is exactly associative — (A+B)+C equals A+(B+C) — and both
    /// equal the histogram of the concatenated sample.
    #[test]
    fn merge_is_associative_and_matches_union(
        a in latency_values(),
        b in latency_values(),
        c in latency_values(),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let left = LatencyHistogram::new(); // (A+B)+C
        left.merge_from(&ha);
        left.merge_from(&hb);
        left.merge_from(&hc);
        let bc = LatencyHistogram::new();
        bc.merge_from(&hb);
        bc.merge_from(&hc);
        let right = LatencyHistogram::new(); // A+(B+C)
        right.merge_from(&ha);
        right.merge_from(&bc);
        prop_assert_eq!(left.snapshot(), right.snapshot());
        let union: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left.snapshot(), build(&union).snapshot());
    }

    /// A single-sample histogram reports that sample (within the bound) for
    /// every quantile, including q = 0 and q = 1.
    #[test]
    fn single_sample_convention(v in any::<u64>(), q in 0.0f64..=1.0) {
        let h = build(&[v]);
        let got = h.quantile(q);
        prop_assert!(got >= v);
        prop_assert!((got - v) as f64 <= v as f64 * RELATIVE_ERROR_BOUND + 1e-9);
        prop_assert_eq!(h.min(), v);
        prop_assert_eq!(h.max(), v);
        prop_assert_eq!(h.count(), 1);
    }

    /// Window rollups are deterministic: splitting one observation stream
    /// into cumulative snapshots and taking deltas yields the same
    /// per-window distributions on every run, and each delta matches a
    /// histogram built from that window's values alone.
    #[test]
    fn window_rollup_is_deterministic_and_isolating(
        windows in prop::collection::vec(latency_values(), 1..5),
    ) {
        let roll = |windows: &[Vec<u64>]| -> Vec<LatencySample> {
            let h = LatencyHistogram::new();
            let mut prev = LatencySample::default();
            let mut deltas = Vec::new();
            for w in windows {
                for &v in w {
                    h.observe(v);
                }
                let cum = h.snapshot();
                deltas.push(cum.delta_from(&prev));
                prev = cum;
            }
            deltas
        };
        let first = roll(&windows);
        prop_assert_eq!(&first, &roll(&windows), "rollup not deterministic");
        for (delta, w) in first.iter().zip(&windows) {
            prop_assert_eq!(delta.count, w.len() as u64);
            // Bucket counts match a histogram of the window's values alone.
            prop_assert_eq!(&delta.buckets, &build(w).snapshot().buckets);
        }
    }
}

/// The empty-histogram convention, pinned outside proptest: all zeros.
#[test]
fn empty_histogram_convention() {
    let h = LatencyHistogram::new();
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(h.quantile(q), 0);
    }
    assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
    assert!(h.snapshot().is_empty());
}
