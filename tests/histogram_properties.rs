//! Property-based tests of histogram invariants (proptest).

use proptest::prelude::*;
use stats::{Histogram, HistogramKind};
use storage::Value;

fn value_vec() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-1000i64..1000, 1..400)
}

fn to_values(v: &[i64]) -> Vec<Value> {
    v.iter().map(|&i| Value::Int(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket fractions always sum to 1 (non-empty input).
    #[test]
    fn fractions_sum_to_one(vals in value_vec(), buckets in 1usize..50) {
        for kind in [HistogramKind::EquiDepth, HistogramKind::MaxDiff] {
            let h = Histogram::build(kind, &to_values(&vals), buckets);
            let total: f64 = h.buckets().iter().map(|b| b.fraction).sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "{kind:?}: {total}");
        }
    }

    /// Every selectivity estimate lies in [0, 1].
    #[test]
    fn estimates_in_unit_interval(vals in value_vec(), probe in -1500i64..1500) {
        let h = Histogram::build(HistogramKind::EquiDepth, &to_values(&vals), 16);
        let p = Value::Int(probe);
        for est in [
            h.selectivity_eq(&p),
            h.selectivity_lt(&p),
            h.selectivity_le(&p),
            h.selectivity_gt(&p),
            h.selectivity_ge(&p),
            h.selectivity_ne(&p),
        ] {
            prop_assert!((0.0..=1.0).contains(&est), "estimate {est}");
        }
    }

    /// The estimated CDF is monotone: a <= b implies sel(< a) <= sel(< b).
    #[test]
    fn cdf_monotone(vals in value_vec(), a in -1500i64..1500, b in -1500i64..1500) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let h = Histogram::build(HistogramKind::MaxDiff, &to_values(&vals), 20);
        prop_assert!(
            h.selectivity_lt(&Value::Int(a)) <= h.selectivity_lt(&Value::Int(b)) + 1e-12
        );
    }

    /// Equality estimates are exact when buckets cover each distinct value.
    /// In-domain probes (including in-domain gaps) match the true frequency
    /// exactly; probes outside the observed [min, max] get the stale-stats
    /// floor of ~one row instead of a hard zero.
    #[test]
    fn eq_exact_with_enough_buckets(vals in prop::collection::vec(0i64..20, 1..300)) {
        let values = to_values(&vals);
        let h = Histogram::build(HistogramKind::MaxDiff, &values, 32);
        let n = vals.len() as f64;
        let min = *vals.iter().min().unwrap();
        let max = *vals.iter().max().unwrap();
        for v in 0..20i64 {
            let actual = vals.iter().filter(|&&x| x == v).count() as f64 / n;
            let est = h.selectivity_eq(&Value::Int(v));
            if v < min || v > max {
                prop_assert!(
                    (est - 1.0 / n).abs() < 1e-9,
                    "out-of-domain value {v}: est {est} != floor {}",
                    1.0 / n
                );
            } else {
                prop_assert!(
                    (actual - est).abs() < 1e-9,
                    "value {v}: actual {actual} est {est}"
                );
            }
        }
    }

    /// Disjoint adjacent ranges approximately add up to the enclosing range.
    /// Exactness is impossible with intra-bucket interpolation, so the
    /// allowed error is one bucket's mass (the interpolation granularity).
    #[test]
    fn range_additivity(vals in value_vec(), lo in -900i64..0, hi in 1i64..900) {
        let h = Histogram::build(HistogramKind::EquiDepth, &to_values(&vals), 24);
        let granularity = h
            .buckets()
            .iter()
            .map(|b| b.fraction)
            .fold(0.0f64, f64::max);
        let left = h.selectivity_between(&Value::Int(lo), &Value::Int(0));
        let right = h.selectivity_between(&Value::Int(1), &Value::Int(hi));
        let all = h.selectivity_between(&Value::Int(lo), &Value::Int(hi));
        prop_assert!(
            (left + right - all).abs() <= granularity + 1e-9,
            "additivity violated beyond bucket granularity {granularity}: {left}+{right} != {all}"
        );
    }

    /// BETWEEN over the full observed domain has selectivity 1.
    #[test]
    fn full_domain_between_is_one(vals in value_vec()) {
        let values = to_values(&vals);
        let h = Histogram::build(HistogramKind::EquiDepth, &values, 16);
        let min = *vals.iter().min().unwrap();
        let max = *vals.iter().max().unwrap();
        let est = h.selectivity_between(&Value::Int(min), &Value::Int(max));
        prop_assert!((est - 1.0).abs() < 1e-6, "{est}");
    }

    /// NDV never exceeds the row count and matches the true distinct count
    /// on full scans.
    #[test]
    fn ndv_exact_on_full_data(vals in value_vec()) {
        use std::collections::HashSet;
        let h = Histogram::build(HistogramKind::EquiDepth, &to_values(&vals), 16);
        let truth = vals.iter().collect::<HashSet<_>>().len() as f64;
        prop_assert_eq!(h.ndv(), truth);
    }
}

/// One arbitrary `Value` drawn from every shape the engine stores: ints,
/// floats (including non-finite ones), strings with a shared prefix, strings
/// without, and dates.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(f64::NEG_INFINITY)),
        "[a-d]{0,6}".prop_map(Value::Str),
        "pre[a-d]{0,4}".prop_map(Value::Str),
        (-20000i32..20000).prop_map(Value::Date),
    ]
}

/// A column of arbitrary values — possibly empty, possibly a mix of types.
fn arb_column() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Estimator invariants over arbitrary value mixes: every estimate is a
    /// number in [0, 1], `lt <= le`, `eq + ne == 1`, and a BETWEEN never
    /// exceeds the one-sided bound of its upper end. Holds for empty columns,
    /// non-finite floats, and heterogeneous type mixes alike.
    #[test]
    fn estimator_invariants_on_arbitrary_values(
        vals in arb_column(),
        probe in arb_value(),
        probe_hi in arb_value(),
    ) {
        for kind in [HistogramKind::EquiDepth, HistogramKind::MaxDiff] {
            let h = Histogram::build(kind, &vals, 16);
            let lt = h.selectivity_lt(&probe);
            let le = h.selectivity_le(&probe);
            let eq = h.selectivity_eq(&probe);
            let ne = h.selectivity_ne(&probe);
            let gt = h.selectivity_gt(&probe);
            let ge = h.selectivity_ge(&probe);
            let between = h.selectivity_between(&probe, &probe_hi);
            for est in [lt, le, eq, ne, gt, ge, between] {
                prop_assert!(!est.is_nan(), "{kind:?}: NaN estimate");
                prop_assert!((0.0..=1.0).contains(&est), "{kind:?}: estimate {est}");
            }
            prop_assert!(lt <= le + 1e-12, "{kind:?}: lt {lt} > le {le}");
            prop_assert!((eq + ne - 1.0).abs() < 1e-9, "{kind:?}: eq {eq} + ne {ne} != 1");
            prop_assert!(
                between <= h.selectivity_le(&probe_hi) + 1e-12,
                "{kind:?}: between {between} exceeds le(hi)"
            );
        }
    }

    /// Degenerate bucket budgets (including zero) still produce total,
    /// in-range estimators.
    #[test]
    fn zero_bucket_budget_still_total(vals in arb_column(), probe in arb_value()) {
        for buckets in [0usize, 1] {
            let h = Histogram::build(HistogramKind::EquiDepth, &vals, buckets);
            for est in [h.selectivity_eq(&probe), h.selectivity_le(&probe)] {
                prop_assert!(!est.is_nan());
                prop_assert!((0.0..=1.0).contains(&est), "buckets={buckets}: {est}");
            }
        }
    }
}
