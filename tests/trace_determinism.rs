//! The observability cost contract, tested differentially: **enabling
//! tracing may never change a tuning outcome.**
//!
//! Catalogs (descriptors, `StatId`s, drop-lists, work meters), tuning
//! reports, session journals, and the plans the optimizer picks afterwards
//! must be bit-identical with tracing on vs off, and across `threads =
//! 1/2/8` of the offline tuner. On top of that, every flushed trace must be
//! structurally well-formed — all spans closed, children enclosed by their
//! parents, monotone sequence numbers — including under the fault-injection
//! schedules of `tests/fault_injection.rs`, where tuning takes its error
//! paths and spans unwind through early returns.

use autostats::{Fault, FaultPlan, MnsaConfig, MnsaEngine, OfflineTuner};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use obsv::trace::validate;
use obsv::Obs;
use optimizer::{OptimizeOptions, Optimizer};
use proptest::prelude::*;
use query::{bind_statement, parse_statement, BoundSelect, BoundStatement};
use stats::{StatDescriptor, StatsCatalog};
use storage::{ColumnDef, DataType, Database, Schema, TableId, Value};

fn test_db(seed: u64) -> Database {
    build_tpcd(&TpcdConfig {
        scale: 0.004,
        zipf: ZipfSpec::Mixed,
        seed,
    })
}

fn workload(db: &Database, n: usize, seed: u64) -> Vec<BoundSelect> {
    let spec = WorkloadSpec::new(0, Complexity::Complex, n).with_seed(seed);
    RagsGenerator::generate(db, &spec)
        .iter()
        .filter_map(|stmt| match bind_statement(db, stmt) {
            Ok(BoundStatement::Select(q)) => Some(q),
            _ => None,
        })
        .collect()
}

/// Catalog state relevant to equivalence: active descriptors with their
/// ids, plus the drop-list, plus the creation-work meter (bit-compared).
fn catalog_state(catalog: &StatsCatalog) -> (Vec<(u32, StatDescriptor)>, Vec<u32>, u64) {
    let mut active: Vec<(u32, StatDescriptor)> = catalog
        .active()
        .map(|s| (s.id.0, s.descriptor.clone()))
        .collect();
    active.sort_by_key(|(id, _)| *id);
    (
        active,
        catalog.drop_list().map(|id| id.0).collect(),
        catalog.creation_work().to_bits(),
    )
}

/// One full offline tuning session under `obs`, returning everything an
/// outcome comparison cares about: final catalog state, report, journal,
/// and the (fingerprint, cost-bits) of every plan picked afterwards.
type SessionFingerprint = (
    (Vec<(u32, StatDescriptor)>, Vec<u32>, u64),
    autostats::TuningReport,
    autostats::SessionReport,
    Vec<(u64, u64)>,
);

fn tune_under(
    db: &Database,
    queries: &[BoundSelect],
    threads: usize,
    obs: &Obs,
) -> SessionFingerprint {
    let tuner = OfflineTuner {
        threads,
        ..OfflineTuner::default()
    };
    let mut catalog = StatsCatalog::new();
    catalog.set_obs(obs);
    let (report, session) = tuner
        .tune_session(db, &mut catalog, queries, None, obs)
        .expect("tuning succeeds");
    let optimizer = Optimizer::default();
    let plans = queries
        .iter()
        .map(|q| {
            let r = optimizer
                .optimize(db, q, catalog.full_view(), &OptimizeOptions::default())
                .expect("tuned catalog optimizes");
            (r.plan.structural_fingerprint(), r.cost.to_bits())
        })
        .collect();
    (catalog_state(&catalog), report, session, plans)
}

#[test]
fn tracing_on_off_and_thread_counts_bit_identical() {
    let db = test_db(7);
    let queries = workload(&db, 14, 11);
    assert!(
        queries.len() > 4,
        "workload generator produced too few queries"
    );

    // Reference: serial, tracing fully disabled.
    let reference = tune_under(&db, &queries, 1, &Obs::disabled());

    for threads in [1usize, 2, 8] {
        let obs = Obs::enabled();
        let traced = tune_under(&db, &queries, threads, &obs);
        assert_eq!(
            reference.0, traced.0,
            "catalog divergence with tracing on, threads={threads}"
        );
        assert_eq!(
            reference.1, traced.1,
            "report divergence with tracing on, threads={threads}"
        );
        assert_eq!(
            reference.2, traced.2,
            "journal divergence with tracing on, threads={threads}"
        );
        assert_eq!(
            reference.3, traced.3,
            "plan divergence with tracing on, threads={threads}"
        );

        // And the trace the run produced is non-trivial and well-formed.
        let events = obs.tracer.flush();
        assert!(
            events.iter().any(|e| e.name == "tuner.session")
                && events.iter().any(|e| e.name == "mnsa.query")
                && events.iter().any(|e| e.name == "optimizer.call")
                && events.iter().any(|e| e.name == "shrink.run"),
            "expected span taxonomy missing at threads={threads}"
        );
        let defects = validate(&events);
        assert!(
            defects.is_empty(),
            "malformed trace at threads={threads}: {defects:?}"
        );
    }
}

#[test]
fn metrics_counters_agree_with_outcomes() {
    // The registry is shared observability state, not the source of truth —
    // but in a serial run with no speculation its counters must agree
    // exactly with the accumulated outcome totals.
    let db = test_db(13);
    let queries = workload(&db, 10, 17);
    let obs = Obs::enabled();
    let (_, report, session, _) = tune_under(&db, &queries, 1, &obs);

    let snapshot = obs.metrics.snapshot();
    let counter = |name: &str| match snapshot.entries.get(name) {
        Some(obsv::MetricValue::Counter(v)) => *v as usize,
        other => panic!("metric {name} missing or wrong kind: {other:?}"),
    };
    assert_eq!(
        counter("mnsa.optimizer_calls") + counter("shrink.optimizer_calls"),
        report.optimizer_calls,
        "optimizer-call counters disagree with the report"
    );
    assert_eq!(counter("mnsa.queries"), queries.len());
    assert_eq!(counter("mnsa.stats_created"), report.statistics_created);
    assert_eq!(counter("shrink.removed"), session.shrink_removed);
}

// ---- fault-injection schedules (mirrors tests/fault_injection.rs) ----

fn build_small_db(rows: usize) -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(
            "facts",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ]),
        )
        .unwrap();
    let d = db
        .create_table(
            "dim",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("label", DataType::Str),
            ]),
        )
        .unwrap();
    for i in 0..rows as i64 {
        db.table_mut(t)
            .insert(vec![
                Value::Int(i % 40),
                Value::Int(if i % 50 == 0 { 1 } else { 0 }),
                Value::Int(i % 7),
            ])
            .unwrap();
    }
    for i in 0..(rows as i64 / 10).max(1) {
        db.table_mut(d)
            .insert(vec![Value::Int(i), Value::Str(format!("x{i}"))])
            .unwrap();
    }
    db
}

fn small_workload(db: &Database) -> Vec<BoundSelect> {
    [
        "SELECT * FROM facts WHERE a = 1",
        "SELECT * FROM facts, dim WHERE facts.k = dim.k AND a = 1",
        "SELECT b, COUNT(*) FROM facts WHERE a = 1 GROUP BY b",
        "SELECT * FROM facts WHERE b < 3 AND a = 0",
    ]
    .iter()
    .map(
        |sql| match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => unreachable!(),
        },
    )
    .collect()
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::TruncateTable(TableId(0))),
        Just(Fault::TruncateTable(TableId(1))),
        Just(Fault::TruncateTable(TableId(99))), // unknown table
        Just(Fault::TruncateAllTables),
        Just(Fault::DropAllStatistics),
        Just(Fault::DegenerateSampler),
        Just(Fault::ZeroBucketHistograms),
    ]
}

fn arb_plan() -> impl Strategy<Value = Vec<Fault>> {
    prop::collection::vec(arb_fault(), 0..4)
}

/// One fault-injected tuning sequence: per-query MNSA/D with faults between
/// queries, then an offline pass. Returns the final catalog state; errors
/// along the way are tolerated (that is the point), panics are not.
fn faulted_sequence(
    pre: &[Fault],
    mid: &[Fault],
    rows: usize,
    obs: &Obs,
) -> (Vec<(u32, StatDescriptor)>, Vec<u32>, u64) {
    let mut db = build_small_db(rows);
    let queries = small_workload(&db);
    let mut catalog = StatsCatalog::new();
    catalog.set_obs(obs);

    let pre_plan = pre.iter().fold(FaultPlan::new(), |p, f| p.with(f.clone()));
    pre_plan.inject(&mut db, &mut catalog);

    let engine = MnsaEngine::new(MnsaConfig::default().with_drop_detection()).with_obs(obs.clone());
    let mid_plan = mid.iter().fold(FaultPlan::new(), |p, f| p.with(f.clone()));
    for (i, q) in queries.iter().enumerate() {
        let _ = engine.run_query(&db, &mut catalog, q);
        if i == 1 {
            mid_plan.inject(&mut db, &mut catalog);
        }
    }
    let tuner = OfflineTuner {
        threads: 2,
        ..OfflineTuner::default()
    };
    let _ = tuner.tune_session(&db, &mut catalog, &queries, None, obs);
    catalog_state(&catalog)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary fault schedules, the flushed span tree stays
    /// well-formed (spans unwind through error paths via RAII) and the
    /// tuning outcome stays bit-identical to the untraced run of the same
    /// schedule.
    #[test]
    fn traces_well_formed_and_outcomes_unchanged_under_faults(
        pre in arb_plan(),
        mid in arb_plan(),
        rows in 0usize..300,
    ) {
        let untraced = faulted_sequence(&pre, &mid, rows, &Obs::disabled());

        let obs = Obs::enabled();
        let traced = faulted_sequence(&pre, &mid, rows, &obs);
        prop_assert_eq!(untraced, traced);

        let events = obs.tracer.flush();
        let defects = validate(&events);
        prop_assert!(defects.is_empty(), "trace defects under faults: {:?}", defects);
    }
}
