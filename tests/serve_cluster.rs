//! Integration tests for the sharded serving layer (`serve`).
//!
//! The contracts under test, end to end through the public crate APIs:
//!
//! * **router determinism** (proptest) — routing is a pure function of the
//!   statement and the plan: independently built plans route a generated
//!   workload identically, single-shard routes stay in range, and the
//!   fallback's lock-acquisition order is strictly ascending;
//! * **1-shard identity** — a 1-shard cluster fed a statement/tick schedule
//!   produces bit-identical tick reports, epoch generations, and journal
//!   JSON to a plain `autod::OnlineService` over the same database (with
//!   the same `ShardAssigned` prelude journaled);
//! * **scatter/broadcast/fallback vs oracle** — every routed execution path
//!   returns the same rows (as a multiset; exact order under ORDER BY) and
//!   the same DML counts as an unsharded service over the same database;
//! * **admission stress** — several client threads hammer cloned
//!   `ClusterClient`s while the driver ticks the cluster; nothing errors,
//!   every shard's daemon survives, and the monitors observe traffic.

use autod::{AutodConfig, OnlineService};
use autostats::{AutoStatsManager, CreationPolicy, ManagerConfig, OnlineEvent};
use executor::StatementOutcome;
use proptest::prelude::*;
use query::{parse_statement, Statement};
use serve::{Route, Router, ServeCluster, ServeConfig, ShardPlan, ShardPlanConfig};
use std::sync::Arc;
use storage::{ColumnDef, DataType, Database, Schema, Value};

/// Three tables sized so a partition threshold of 100 splits `big` while
/// `mid` and `small` land whole on (usually different) shards.
fn test_db() -> Database {
    let mut db = Database::new();
    for (name, rows) in [("big", 600usize), ("mid", 80), ("small", 10)] {
        let id = db
            .create_table(
                name,
                Schema::new(vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..rows {
            db.table_mut(id)
                .insert(vec![Value::Int(i as i64), Value::Int((i % 7) as i64)])
                .unwrap();
        }
    }
    db
}

fn manager_config() -> ManagerConfig {
    ManagerConfig {
        creation: CreationPolicy::Manual,
        auto_maintain: false,
        ..ManagerConfig::default()
    }
}

fn cluster_config(shards: usize, partition_threshold: usize) -> ServeConfig {
    ServeConfig {
        shards,
        partition_threshold,
        global_budget_per_tick: f64::INFINITY,
        autod: AutodConfig::default(),
        manager: manager_config(),
        ..ServeConfig::default()
    }
}

/// Rows of a query outcome as sortable strings (Value has no Ord).
fn row_strings(outcome: &StatementOutcome) -> Vec<String> {
    match outcome {
        StatementOutcome::Query { output, .. } => {
            output.rows.iter().map(|r| format!("{r:?}")).collect()
        }
        StatementOutcome::Dml { .. } => panic!("expected a query outcome"),
    }
}

fn rows_affected(outcome: &StatementOutcome) -> usize {
    match outcome {
        StatementOutcome::Dml { rows_affected, .. } => *rows_affected,
        StatementOutcome::Query { .. } => panic!("expected a DML outcome"),
    }
}

// ---------------------------------------------------------------------------
// Router determinism (proptest)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn router_is_a_pure_function_of_statement_and_plan(
        seed in 0u64..400,
        shards in 1usize..5,
        partition in any::<bool>(),
    ) {
        // Rags generates against TPC-D table names; build the database once.
        static TPCD: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
        let db = TPCD.get_or_init(|| {
            datagen::build_tpcd(&datagen::TpcdConfig {
                scale: 0.001,
                zipf: datagen::ZipfSpec::Mixed,
                seed: 7,
            })
        });
        // Partition the largest table when asked.
        let threshold = if partition {
            db.table_ids().map(|id| db.table(id).row_count()).max().unwrap_or(1)
        } else {
            usize::MAX
        };
        let config = ShardPlanConfig {
            shards,
            partition_threshold: threshold,
            ..ShardPlanConfig::default()
        };
        // Two independently built plans must agree on everything.
        let router_a = Router::new(Arc::new(ShardPlan::build(db, &config)));
        let router_b = Router::new(Arc::new(ShardPlan::build(db, &config)));

        let spec = datagen::WorkloadSpec::new(8, datagen::Complexity::Simple, 30)
            .with_seed(seed);
        let statements = datagen::RagsGenerator::generate(db, &spec);
        prop_assert!(!statements.is_empty());

        for stmt in &statements {
            let route = router_a.route(stmt);
            prop_assert_eq!(&route, &router_b.route(stmt));
            match route {
                Route::Single(s) | Route::PartitionedInsert(s) => prop_assert!(s < shards),
                Route::Broadcast | Route::Scatter => prop_assert!(shards > 1),
                Route::Fallback => {}
            }
            let involved = router_a.involved_shards(stmt);
            prop_assert_eq!(involved.clone(), router_b.involved_shards(stmt));
            prop_assert!(involved.windows(2).all(|w| w[0] < w[1]),
                "lock order must be strictly ascending: {involved:?}");
            prop_assert!(involved.iter().all(|&s| s < shards));
        }
    }
}

// ---------------------------------------------------------------------------
// 1-shard identity
// ---------------------------------------------------------------------------

const IDENTITY_STATEMENTS: &[&str] = &[
    "SELECT k FROM big WHERE k < 120",
    "SELECT b.k FROM big b, mid m WHERE b.k = m.k AND m.v = 3",
    "UPDATE mid SET v = 9 WHERE k < 40",
    "SELECT k FROM mid WHERE v = 9",
    "INSERT INTO small VALUES (99, 99)",
    "SELECT COUNT(*) FROM small",
    "SELECT s.k FROM small s, mid m WHERE s.k = m.k",
    "DELETE FROM big WHERE k >= 590",
    "SELECT k FROM big WHERE v = 2",
];

#[test]
fn one_shard_cluster_is_bit_identical_to_the_unsharded_service() {
    let budget = 500.0; // finite: the arbiter must hand it over exactly
    let statements: Vec<Statement> = IDENTITY_STATEMENTS
        .iter()
        .map(|s| parse_statement(s).unwrap())
        .collect();

    // The cluster side.
    let cluster = ServeCluster::start(
        test_db(),
        ServeConfig {
            global_budget_per_tick: budget,
            ..cluster_config(1, usize::MAX)
        },
    )
    .unwrap();
    let client = cluster.client(1);
    let mut cluster_reports = Vec::new();
    for (i, stmt) in statements.iter().enumerate() {
        client.run(stmt).unwrap();
        if (i + 1) % 3 == 0 {
            cluster_reports.extend(cluster.tick_wait().unwrap());
        }
    }
    for _ in 0..16 {
        cluster_reports.extend(cluster.tick_wait().unwrap());
    }
    let cluster_generations = cluster.generations();
    let mut pairs = cluster.shutdown().unwrap();
    let (_, cluster_report) = pairs.remove(0);
    assert!(cluster_report.error.is_none());

    // The unsharded baseline, with the same `ShardAssigned` prelude.
    let db = test_db();
    let plan = ShardPlan::build(&db, &ShardPlanConfig::default());
    let mut shard_dbs = plan.shard_databases(&db).unwrap();
    let shard_db = shard_dbs.remove(0);
    let manifest = plan.shard_manifest(0, &shard_db);
    let mgr = AutoStatsManager::new_with_obs(shard_db, manager_config(), obsv::Obs::disabled());
    let mut parts = mgr.serve();
    for (table, rows, partitioned) in manifest {
        parts.session.record_online(OnlineEvent::ShardAssigned {
            tick: 0,
            shard: 0,
            table,
            rows,
            partitioned,
        });
    }
    let svc = OnlineService::start(parts, AutodConfig::default());
    let handle = svc.handle(1);
    let mut plain_reports = Vec::new();
    for (i, stmt) in statements.iter().enumerate() {
        handle.run(stmt).unwrap();
        if (i + 1) % 3 == 0 {
            plain_reports.push(svc.tick_wait_budgeted(budget).unwrap());
        }
    }
    for _ in 0..16 {
        plain_reports.push(svc.tick_wait_budgeted(budget).unwrap());
    }
    let plain_generation = svc.generation();
    let (_, plain_report) = svc.shutdown().unwrap();
    assert!(plain_report.error.is_none());

    assert_eq!(cluster_reports, plain_reports, "tick reports diverged");
    assert_eq!(cluster_generations, vec![plain_generation]);
    assert_eq!(
        cluster_report.session.to_json(),
        plain_report.session.to_json(),
        "journal JSON diverged"
    );
    assert_eq!(cluster_report.observed, plain_report.observed);
}

// ---------------------------------------------------------------------------
// Scatter / broadcast / fallback vs the single-database oracle
// ---------------------------------------------------------------------------

#[test]
fn sharded_execution_matches_the_single_database_oracle() {
    let cluster = ServeCluster::start(test_db(), cluster_config(3, 100)).unwrap();
    let client = cluster.client(1);
    let oracle_svc = OnlineService::start(
        AutoStatsManager::new(test_db(), manager_config()).serve(),
        AutodConfig::default(),
    );
    let oracle = oracle_svc.handle(1);

    // `big` partitions across all three shards; `mid`/`small` are owned.
    assert_eq!(
        cluster.plan().placement_by_name("big").unwrap().placement,
        serve::Placement::Partitioned
    );

    // Interleave queries and DML; after every statement both sides must
    // agree (multiset of rows for queries, counts for DML).
    let script: &[(&str, bool)] = &[
        // (sql, ordered) — ordered compares row order exactly.
        ("SELECT * FROM big WHERE k < 50", false), // scatter
        ("SELECT COUNT(*) FROM big", false),       // fallback: aggregate
        ("SELECT k FROM big ORDER BY k", true),    // fallback: order by
        (
            "SELECT b.k FROM big b, mid m WHERE b.k = m.k AND m.v = 3",
            false,
        ), // fallback: join
        ("SELECT m.k FROM mid m, small s WHERE m.k = s.k", false), // owned join
        ("SELECT k FROM mid WHERE v = 5", false),  // single shard
    ];
    for (sql, ordered) in script {
        let ours = client.run_sql(sql).unwrap();
        let theirs = oracle.run_sql(sql).unwrap();
        let mut a = row_strings(&ours);
        let mut b = row_strings(&theirs);
        if !ordered {
            a.sort();
            b.sort();
        }
        assert_eq!(a, b, "rows diverged for {sql}");
    }

    // DML paths: broadcast update/delete on the partitioned table, a
    // row-hashed insert, and an owned-table update.
    for sql in [
        "UPDATE big SET v = 7 WHERE k < 100", // broadcast
        "DELETE FROM big WHERE k >= 550",     // broadcast
        "INSERT INTO big VALUES (9999, 1)",   // partitioned insert
        "UPDATE mid SET v = 1 WHERE k >= 70", // single shard
    ] {
        let ours = client.run_sql(sql).unwrap();
        let theirs = oracle.run_sql(sql).unwrap();
        assert_eq!(
            rows_affected(&ours),
            rows_affected(&theirs),
            "rows_affected diverged for {sql}"
        );
    }
    // And the data converged to the same state.
    for sql in ["SELECT COUNT(*) FROM big", "SELECT * FROM big WHERE v = 7"] {
        let mut a = row_strings(&client.run_sql(sql).unwrap());
        let mut b = row_strings(&oracle.run_sql(sql).unwrap());
        a.sort();
        b.sort();
        assert_eq!(a, b, "post-DML state diverged for {sql}");
    }

    assert!(cluster.shutdown().is_some());
    assert!(oracle_svc.shutdown().is_some());
}

// ---------------------------------------------------------------------------
// Multi-thread admission stress
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_and_ticks_stress_the_cluster() {
    let cluster = ServeCluster::start(test_db(), cluster_config(3, 100)).unwrap();
    let statements: Vec<Statement> = [
        "SELECT k FROM big WHERE k < 200",
        "SELECT * FROM big WHERE v = 3",
        "SELECT COUNT(*) FROM big",
        "SELECT b.k FROM big b, mid m WHERE b.k = m.k",
        "SELECT k FROM mid WHERE v = 2",
        "SELECT s.k FROM small s, mid m WHERE s.k = m.k",
        "UPDATE big SET v = 5 WHERE k < 10",
        "INSERT INTO big VALUES (7777, 3)",
        "UPDATE mid SET v = 2 WHERE k < 20",
    ]
    .iter()
    .map(|s| parse_statement(s).unwrap())
    .collect();

    let threads = 4;
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let client = cluster.client(tid as u64 + 1);
            let mine: Vec<&Statement> = statements.iter().skip(tid).step_by(threads).collect();
            scope.spawn(move || {
                for _ in 0..8 {
                    for stmt in &mine {
                        client.run(stmt).expect("statement runs under contention");
                    }
                }
            });
        }
        // The driver ticks while clients hammer: epochs publish mid-flight.
        let mut last = vec![0u64; cluster.shards()];
        for _ in 0..6 {
            cluster.tick_wait().expect("tick under contention");
            let gens = cluster.generations();
            for (g, l) in gens.iter().zip(&last) {
                assert!(g >= l, "generations must be monotone");
            }
            last = gens;
        }
    });

    let merged = cluster.merged_health();
    assert!(merged.queries > 0, "merged health saw query traffic");
    let sample = cluster.merged_query_latency();
    assert!(sample.count > 0, "merged latency histogram saw queries");

    let pairs = cluster.shutdown().expect("every shard daemon survives");
    assert_eq!(pairs.len(), 3);
    let mut observed = 0;
    for (_, report) in &pairs {
        assert!(report.error.is_none(), "no shard recorded a tick error");
        observed += report.observed;
    }
    assert!(observed > 0, "monitors observed the workload");
}
