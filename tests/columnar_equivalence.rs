//! Differential test harness: the columnar batch executor must be
//! **bit-identical** to the retained row-at-a-time reference interpreter.
//!
//! [`execute_plan`] evaluates selections by selection vector over typed
//! column slices, keys joins and group-bys by 64-bit fingerprints (with
//! collision-checked exact verification), and materializes projections
//! column-wise. Its contract is exact equivalence with
//! [`execute_plan_reference`]: the same `ExecOutput.rows` in the same order
//! and the same `work` *to the bit* (`f64::to_bits`), since the work meter
//! feeds the paper's execution-cost figures and must not drift with the
//! execution strategy. This harness checks the contract differentially over
//! optimizer-generated plans: RAGS workloads on seeded TPC-D instances, with
//! and without statistics (different plan shapes), on faulted/truncated
//! databases, and on NULL-heavy data.

use autostats::{candidate_statistics, Fault, FaultPlan};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use executor::{execute_plan, execute_plan_reference};
use optimizer::{OptimizeOptions, Optimizer};
use proptest::prelude::*;
use query::{bind_statement, BoundSelect, BoundStatement};
use stats::StatsCatalog;
use storage::{ColumnDef, DataType, Database, Schema, Value};

fn test_db(seed: u64) -> Database {
    build_tpcd(&TpcdConfig {
        scale: 0.004,
        zipf: ZipfSpec::Mixed,
        seed,
    })
}

fn workload(db: &Database, n: usize, complexity: Complexity, seed: u64) -> Vec<BoundSelect> {
    let spec = WorkloadSpec::new(0, complexity, n).with_seed(seed);
    RagsGenerator::generate(db, &spec)
        .iter()
        .filter_map(|stmt| match bind_statement(db, stmt) {
            Ok(BoundStatement::Select(q)) => Some(q),
            _ => None,
        })
        .collect()
}

/// Optimize `q` against `catalog`, run both engines, and demand identical
/// rows and bit-identical work. Returns whether the query executed (plans
/// that fail to optimize are skipped — plan *choice* is not under test).
fn assert_equivalent(db: &Database, catalog: &StatsCatalog, q: &BoundSelect) -> bool {
    let optimizer = Optimizer::default();
    let Ok(optimized) = optimizer.optimize(db, q, catalog.full_view(), &OptimizeOptions::default())
    else {
        return false;
    };
    let batch = execute_plan(db, q, &optimized.plan, &optimizer.params);
    let reference = execute_plan_reference(db, q, &optimized.plan, &optimizer.params);
    match (batch, reference) {
        (Ok(b), Ok(r)) => {
            assert_eq!(b.rows, r.rows, "row divergence");
            assert_eq!(
                b.work.to_bits(),
                r.work.to_bits(),
                "work divergence: batch {} vs reference {}",
                b.work,
                r.work
            );
            true
        }
        (b, r) => panic!("one engine errored: batch={b:?} reference={r:?}"),
    }
}

#[test]
fn columnar_matches_reference_without_statistics() {
    let mut executed = 0usize;
    for seed in [3u64, 11, 29] {
        let db = test_db(seed);
        let catalog = StatsCatalog::new();
        for complexity in [Complexity::Simple, Complexity::Complex] {
            for q in workload(&db, 16, complexity, seed * 13 + 5) {
                executed += usize::from(assert_equivalent(&db, &catalog, &q));
            }
        }
    }
    assert!(executed > 40, "only {executed} queries executed");
}

#[test]
fn columnar_matches_reference_with_statistics() {
    // Statistics change plan shapes (index scans, join orders, operator
    // choice), so the engines are exercised over a different plan population.
    let mut executed = 0usize;
    for seed in [7u64, 19] {
        let db = test_db(seed);
        let queries = workload(&db, 20, Complexity::Complex, seed + 101);
        let mut catalog = StatsCatalog::new();
        for q in &queries {
            for d in candidate_statistics(q) {
                let _ = catalog.create_statistic(&db, d);
            }
        }
        for q in &queries {
            executed += usize::from(assert_equivalent(&db, &catalog, q));
        }
    }
    assert!(executed > 20, "only {executed} queries executed");
}

#[test]
fn columnar_matches_reference_on_faulted_database() {
    let mut db = test_db(5);
    let queries = workload(&db, 16, Complexity::Complex, 77);
    let mut catalog = StatsCatalog::new();
    for q in &queries {
        for d in candidate_statistics(q) {
            let _ = catalog.create_statistic(&db, d);
        }
    }
    // Truncate the largest table: stale statistics now mis-describe empty
    // inputs, and plans execute over zero-row operands.
    let biggest = db
        .table_ids()
        .max_by_key(|&id| db.table(id).row_count())
        .unwrap();
    FaultPlan::new()
        .with(Fault::TruncateTable(biggest))
        .inject(&mut db, &mut catalog);
    let mut executed = 0usize;
    for q in &queries {
        executed += usize::from(assert_equivalent(&db, &catalog, q));
    }
    assert!(executed > 8, "only {executed} queries executed");
}

fn null_heavy_db(vals: &[(Option<i64>, Option<i64>, i64)]) -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int).nullable(),
                ColumnDef::new("b", DataType::Int).nullable(),
                ColumnDef::new("c", DataType::Int),
            ]),
        )
        .unwrap();
    for &(a, b, c) in vals {
        db.table_mut(t)
            .insert(vec![
                a.map_or(Value::Null, Value::Int),
                b.map_or(Value::Null, Value::Int),
                Value::Int(c),
            ])
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// NULL-heavy random data through selections, self-joins, grouping, and
    /// ordering: NULL keys must never join, NULL groups must form their own
    /// group, and both engines must agree bit-for-bit.
    #[test]
    fn columnar_matches_reference_on_null_heavy_data(
        rows in prop::collection::vec(
            (prop::option::of(0i64..6), prop::option::of(0i64..4), 0i64..50),
            1..80,
        ),
        k in 0i64..6,
    ) {
        let db = null_heavy_db(&rows);
        let catalog = StatsCatalog::new();
        for sql in [
            format!("SELECT * FROM t WHERE a >= {k}"),
            "SELECT a, COUNT(*) FROM t WHERE c < 40 GROUP BY a".to_string(),
            "SELECT b, SUM(c) FROM t GROUP BY b ORDER BY b".to_string(),
            format!("SELECT * FROM t t1, t t2 WHERE t1.a = t2.b AND t1.c > {k}"),
            "SELECT * FROM t ORDER BY a DESC".to_string(),
        ] {
            let stmt = query::parse_statement(&sql).unwrap();
            let Ok(BoundStatement::Select(q)) = bind_statement(&db, &stmt) else {
                continue;
            };
            assert_equivalent(&db, &catalog, &q);
        }
    }
}
