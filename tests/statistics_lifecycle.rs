//! Lifecycle integration: creation → use → drop-list → reactivation →
//! aging → physical drop, across the §6 policy machinery.

use autostats::{candidate_statistics, Equivalence, MnsaConfig, MnsaEngine, OfflineTuner};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use query::{bind_statement, BoundSelect, BoundStatement};
use stats::{AgingPolicy, MaintenancePolicy, StatsCatalog};
use storage::{Database, Value};

fn db() -> Database {
    build_tpcd(&TpcdConfig {
        scale: 0.002,
        zipf: ZipfSpec::Fixed(2.0),
        seed: 21,
    })
}

fn queries(db: &Database, n: usize, seed: u64) -> Vec<BoundSelect> {
    let spec = WorkloadSpec::new(0, Complexity::Simple, n).with_seed(seed);
    RagsGenerator::generate(db, &spec)
        .iter()
        .filter_map(|s| match bind_statement(db, s).unwrap() {
            BoundStatement::Select(q) => Some(q),
            _ => None,
        })
        .collect()
}

#[test]
fn drop_listed_statistics_reactivate_for_free_on_repeat_workload() {
    let db = db();
    let workload = queries(&db, 10, 1);
    let mut catalog = StatsCatalog::new();

    // Build all candidates, then shrink: removed ones land on the drop-list.
    for q in &workload {
        for d in candidate_statistics(q) {
            catalog.create_statistic(&db, d).unwrap();
        }
    }
    let tuner = OfflineTuner {
        mnsa: MnsaConfig::default(),
        shrink: Some(Equivalence::paper_default()),
        threads: 1,
    };
    tuner.tune(&db, &mut catalog, &workload).unwrap();
    let work_after_tune = catalog.creation_work();

    // The same workload repeats: whatever MNSA wants again that sits on the
    // drop-list must come back without rebuild cost.
    let engine = MnsaEngine::new(MnsaConfig::default());
    for q in &workload {
        engine.run_query(&db, &mut catalog, q).unwrap();
    }
    assert_eq!(
        catalog.creation_work(),
        work_after_tune,
        "repeat workload re-built statistics instead of reactivating"
    );
}

#[test]
fn update_counters_flow_into_update_work() {
    let mut database = db();
    let mut catalog = StatsCatalog::new();
    let lineitem = database.table_id("lineitem").unwrap();
    catalog
        .create_statistic(&database, stats::StatDescriptor::single(lineitem, 4))
        .unwrap();
    assert_eq!(catalog.update_work(), 0.0);

    // Mutate 30% of lineitem.
    let rows = database.table(lineitem).row_count();
    let victims: Vec<usize> = (0..rows).filter(|r| r % 3 == 0).collect();
    database
        .table_mut(lineitem)
        .update_rows(&victims, 4, &Value::Float(1.0));

    let policy = MaintenancePolicy {
        update_fraction: 0.2,
        min_modified_rows: 10,
        max_updates: 10,
        drop_only_droplisted: true,
    };
    let report = catalog.maintain(&database, &policy);
    assert_eq!(report.statistics_updated, 1);
    assert!(catalog.update_work() > 0.0);

    // The refreshed statistic reflects the new data; its staleness baseline
    // is the (never reset) counter value at rebuild time.
    let counter = database.table(lineitem).modification_counter();
    assert!(counter > 0);
    let sid = catalog.active_ids()[0];
    let stat = catalog.statistic(sid).unwrap();
    assert_eq!(stat.update_count, 1);
    assert_eq!(stat.mods_at_build, counter);
    assert!(catalog.stale_statistics(&database, &policy).is_empty());
    let hot = stat.histogram.selectivity_eq(&Value::Float(1.0));
    assert!(hot > 0.25, "refreshed histogram missed the update: {hot}");
}

#[test]
fn aging_window_expires() {
    let database = db();
    let workload = queries(&database, 6, 2);
    let mut catalog = StatsCatalog::new();
    let aging = AgingPolicy {
        window_epochs: 2,
        expensive_query_cost: f64::INFINITY,
    };

    // Create + physically drop everything the workload wants.
    let engine = MnsaEngine::new(MnsaConfig::default());
    for q in &workload {
        engine.run_query(&database, &mut catalog, q).unwrap();
    }
    for id in catalog.active_ids() {
        catalog.physically_drop(id);
    }

    // Within the window: dampened.
    let aged_engine = MnsaEngine::new(MnsaConfig {
        aging: Some(aging),
        ..Default::default()
    });
    let mut within = 0usize;
    for q in &workload {
        within += aged_engine
            .run_query(&database, &mut catalog, q)
            .unwrap()
            .created
            .len();
    }

    // Past the window: re-creation allowed again.
    for id in catalog.active_ids() {
        catalog.physically_drop(id);
    }
    catalog.advance_epoch();
    catalog.advance_epoch();
    catalog.advance_epoch();
    let mut after = 0usize;
    for q in &workload {
        after += aged_engine
            .run_query(&database, &mut catalog, q)
            .unwrap()
            .created
            .len();
    }
    assert!(
        after >= within,
        "expired aging window should allow at least as many creations ({after} vs {within})"
    );
}

#[test]
fn vanilla_drop_policy_causes_recreate_churn_improved_policy_does_not() {
    // The scenario §2 describes: the vanilla policy "drops a useful
    // statistic only to re-create it immediately for a subsequent query".
    let run = |drop_only_droplisted: bool| -> f64 {
        let mut database = db();
        let workload = queries(&database, 8, 3);
        let mut catalog = StatsCatalog::new();
        let engine = MnsaEngine::new(MnsaConfig::default());
        let policy = MaintenancePolicy {
            update_fraction: 0.05,
            min_modified_rows: 5,
            max_updates: 0, // drop after a single update — aggressive
            drop_only_droplisted,
        };
        for round in 0..3 {
            for q in &workload {
                engine.run_query(&database, &mut catalog, q).unwrap();
            }
            // Update traffic on every table.
            let table_ids: Vec<_> = database.table_ids().collect();
            for t in table_ids {
                let rows = database.table(t).row_count();
                let victims: Vec<usize> = (0..rows).filter(|r| r % 4 == round % 4).collect();
                if let Some(col) = (0..database.table(t).schema().len()).next() {
                    let v = database.table(t).value(0, col);
                    database.table_mut(t).update_rows(&victims, col, &v);
                }
            }
            catalog.maintain(&database, &policy);
        }
        catalog.creation_work()
    };
    let churn_vanilla = run(false);
    let churn_improved = run(true);
    assert!(
        churn_improved <= churn_vanilla,
        "improved policy re-created more than vanilla ({churn_improved} > {churn_vanilla})"
    );
}
