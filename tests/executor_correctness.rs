//! Differential testing of the executor: every random query is evaluated
//! twice — once through the optimizer + plan interpreter, once through a
//! naive reference evaluator (filtered cartesian product + hash grouping) —
//! and the results must match exactly. This is the guard that plan choice
//! (which statistics influence) can never change query *answers*.

use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, ZipfSpec};
use executor::execute_plan;
use optimizer::{OptimizeOptions, Optimizer};
use query::{
    bind_statement, AggFunc, BoundColumn, BoundSelect, BoundStatement, PredOp, Projection,
    Statement,
};
use stats::{StatDescriptor, StatsCatalog};
use std::collections::HashMap;
use storage::{Database, Value};

/// Reference evaluator: filtered cartesian product, no optimizer involved.
fn reference_eval(db: &Database, q: &BoundSelect) -> Vec<Vec<Value>> {
    // Enumerate all tuples (row index per relation) by nested products,
    // filtering with selections and join predicates.
    let mut tuples: Vec<Vec<usize>> = vec![vec![]];
    for (rel, (tid, _)) in q.relations.iter().enumerate() {
        let table = db.table(*tid);
        let mut next = Vec::new();
        for t in &tuples {
            'rows: for r in 0..table.row_count() {
                // Selections on this relation.
                for p in q.selections.iter().filter(|p| p.column.relation == rel) {
                    let v = table.value(r, p.column.column);
                    let ok = match &p.op {
                        PredOp::Cmp(op, rhs) => v
                            .sql_cmp(rhs)
                            .map(|o| match op {
                                query::CmpOp::Eq => o == std::cmp::Ordering::Equal,
                                query::CmpOp::Ne => o != std::cmp::Ordering::Equal,
                                query::CmpOp::Lt => o == std::cmp::Ordering::Less,
                                query::CmpOp::Le => o != std::cmp::Ordering::Greater,
                                query::CmpOp::Gt => o == std::cmp::Ordering::Greater,
                                query::CmpOp::Ge => o != std::cmp::Ordering::Less,
                            })
                            .unwrap_or(false),
                        PredOp::Between(lo, hi) => {
                            v.sql_cmp(lo)
                                .map(|o| o != std::cmp::Ordering::Less)
                                .unwrap_or(false)
                                && v.sql_cmp(hi)
                                    .map(|o| o != std::cmp::Ordering::Greater)
                                    .unwrap_or(false)
                        }
                    };
                    if !ok {
                        continue 'rows;
                    }
                }
                // Join edges between this relation and earlier ones.
                for e in &q.join_edges {
                    let (erel, orel, flip) = if e.right_rel == rel && e.left_rel < rel {
                        (rel, e.left_rel, true)
                    } else if e.left_rel == rel && e.right_rel < rel {
                        (rel, e.right_rel, false)
                    } else {
                        continue;
                    };
                    let _ = erel;
                    let other_table = db.table(q.table_of(orel));
                    for &(lc, rc) in &e.pairs {
                        let (my_col, other_col) = if flip { (rc, lc) } else { (lc, rc) };
                        let mine = table.value(r, my_col);
                        let theirs = other_table.value(t[orel], other_col);
                        if mine.is_null()
                            || theirs.is_null()
                            || mine.sql_cmp(&theirs) != Some(std::cmp::Ordering::Equal)
                        {
                            continue 'rows;
                        }
                    }
                }
                let mut nt = t.clone();
                nt.push(r);
                next.push(nt);
            }
        }
        tuples = next;
    }

    let value_of = |t: &[usize], c: BoundColumn| -> Value {
        db.table(q.table_of(c.relation))
            .value(t[c.relation], c.column)
    };

    if !q.group_by.is_empty() || !q.aggregates.is_empty() {
        let mut groups: HashMap<Vec<Value>, Vec<&Vec<usize>>> = HashMap::new();
        for t in &tuples {
            let key: Vec<Value> = q.group_by.iter().map(|&g| value_of(t, g)).collect();
            groups.entry(key).or_default().push(t);
        }
        let mut keys: Vec<&Vec<Value>> = groups.keys().collect();
        keys.sort();
        return keys
            .into_iter()
            .map(|k| {
                let members = &groups[k];
                let mut row = k.clone();
                for agg in &q.aggregates {
                    let vals: Vec<Value> = match agg.input {
                        None => vec![],
                        Some(c) => members
                            .iter()
                            .map(|t| value_of(t, c))
                            .filter(|v| !v.is_null())
                            .collect(),
                    };
                    row.push(match agg.func {
                        AggFunc::Count => Value::Int(match agg.input {
                            None => members.len() as i64,
                            Some(_) => vals.len() as i64,
                        }),
                        AggFunc::Min => vals.iter().min().cloned().unwrap_or(Value::Null),
                        AggFunc::Max => vals.iter().max().cloned().unwrap_or(Value::Null),
                        AggFunc::Sum | AggFunc::Avg => {
                            if vals.is_empty() {
                                Value::Null
                            } else {
                                let s: f64 = vals.iter().map(Value::numeric_key).sum();
                                if agg.func == AggFunc::Sum {
                                    Value::Float(s)
                                } else {
                                    Value::Float(s / vals.len() as f64)
                                }
                            }
                        }
                    });
                }
                row
            })
            .collect();
    }

    let cols: Vec<BoundColumn> = match &q.projection {
        Projection::Columns(c) => c.clone(),
        Projection::Star => {
            let mut all = Vec::new();
            for (rel, (tid, _)) in q.relations.iter().enumerate() {
                for c in 0..db.table(*tid).schema().len() {
                    all.push(BoundColumn::new(rel, c));
                }
            }
            all
        }
    };
    tuples
        .iter()
        .map(|t| cols.iter().map(|&c| value_of(t, c)).collect())
        .collect()
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            match x.total_cmp(y) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

#[test]
fn executor_matches_reference_on_random_queries() {
    let mut db = build_tpcd(&TpcdConfig {
        scale: 0.001,
        zipf: ZipfSpec::Mixed,
        seed: 31,
    });
    // Indexes so index scans and index nested-loop joins are exercised too.
    datagen::create_tuned_indexes(&mut db);
    let db = db;
    // Statistics present for half the runs so both magic-number plans and
    // statistics-informed plans are exercised.
    let mut catalog = StatsCatalog::new();
    let optimizer = Optimizer::default();
    let mut gen = RagsGenerator::new(&db, 555);
    let mut checked = 0usize;
    for i in 0..40 {
        // Keep reference evaluation tractable: at most 3 relations.
        let ast = gen.gen_query(if i % 3 == 0 {
            Complexity::Simple
        } else {
            Complexity::Complex
        });
        let BoundStatement::Select(q) =
            bind_statement(&db, &Statement::Select(ast.clone())).unwrap()
        else {
            unreachable!()
        };
        if q.relations.len() > 3 {
            continue;
        }
        let product: usize = q
            .relations
            .iter()
            .map(|(t, _)| db.table(*t).row_count().max(1))
            .product();
        if product > 3_000_000 {
            continue;
        }
        if i % 2 == 0 {
            for (t, c) in q.relevant_columns() {
                catalog
                    .create_statistic(&db, StatDescriptor::single(t, c))
                    .unwrap();
            }
        }
        let plan = optimizer
            .optimize(&db, &q, catalog.full_view(), &OptimizeOptions::default())
            .unwrap();
        let out = execute_plan(&db, &q, &plan.plan, &optimizer.params).unwrap();
        let expected = reference_eval(&db, &q);
        assert_eq!(
            sorted(out.rows.clone()),
            sorted(expected),
            "query {i} diverged: {}\nplan:\n{}",
            query::render(&Statement::Select(ast)),
            plan.plan
        );
        checked += 1;
    }
    assert!(checked >= 15, "too few queries were checkable: {checked}");
}
