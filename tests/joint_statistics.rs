//! End-to-end tests of the optional Phased 2-D histograms (§3's MHIST
//! reference): catalog integration, persistence, and MNSA compatibility.

use autostats::{candidate_statistics, MnsaConfig, MnsaEngine};
use query::{bind_statement, parse_statement, BoundSelect, BoundStatement};
use stats::{BuildOptions, StatDescriptor, StatsCatalog};
use storage::{ColumnDef, DataType, Database, Schema, Value};

/// A table whose two filter columns are strongly correlated.
fn correlated_db() -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(
            "sensor",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("temp", DataType::Int),
                ColumnDef::new("alarm", DataType::Int),
            ]),
        )
        .unwrap();
    for i in 0..4000i64 {
        let temp = i % 100;
        let alarm = if temp >= 90 { 1 } else { 0 }; // alarm ⟺ hot
        db.table_mut(t)
            .insert(vec![Value::Int(i), Value::Int(temp), Value::Int(alarm)])
            .unwrap();
    }
    db.create_index("idx_sensor_temp", t, vec![1]).unwrap();
    db
}

fn bind(db: &Database, sql: &str) -> BoundSelect {
    match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
        BoundStatement::Select(q) => q,
        _ => panic!(),
    }
}

#[test]
fn joint_histograms_fix_correlated_conjunctions() {
    let db = correlated_db();
    let t = db.table_id("sensor").unwrap();
    // temp < 90 AND alarm = 1 is contradictory; independence estimates ~9%.
    let q = bind(&db, "SELECT * FROM sensor WHERE temp < 90 AND alarm = 1");
    let optimizer = optimizer::Optimizer::default();

    let mut marginal = StatsCatalog::new();
    for d in [
        StatDescriptor::single(t, 1),
        StatDescriptor::single(t, 2),
        StatDescriptor::multi(t, vec![1, 2]),
    ] {
        marginal.create_statistic(&db, d).unwrap();
    }
    let r1 = optimizer
        .optimize(
            &db,
            &q,
            marginal.full_view(),
            &optimizer::OptimizeOptions::default(),
        )
        .unwrap();

    let mut joint =
        StatsCatalog::new().with_build_options(BuildOptions::default().with_joint_histograms());
    for d in [
        StatDescriptor::single(t, 1),
        StatDescriptor::single(t, 2),
        StatDescriptor::multi(t, vec![1, 2]),
    ] {
        joint.create_statistic(&db, d).unwrap();
    }
    let r2 = optimizer
        .optimize(
            &db,
            &q,
            joint.full_view(),
            &optimizer::OptimizeOptions::default(),
        )
        .unwrap();

    // Actual result is empty; the joint estimate must be much closer to it.
    assert!(
        r2.plan.est_rows < r1.plan.est_rows / 3.0,
        "joint {} vs marginal {}",
        r2.plan.est_rows,
        r1.plan.est_rows
    );
}

#[test]
fn joint_histograms_survive_snapshot_restore() {
    let db = correlated_db();
    let t = db.table_id("sensor").unwrap();
    let mut cat =
        StatsCatalog::new().with_build_options(BuildOptions::default().with_joint_histograms());
    let id = cat
        .create_statistic(&db, StatDescriptor::multi(t, vec![1, 2]))
        .unwrap();
    assert!(cat.statistic(id).unwrap().joint.is_some());

    let restored = StatsCatalog::restore(cat.snapshot());
    let stat = restored.statistic(id).unwrap();
    let joint = stat.joint.as_ref().expect("joint histogram persisted");
    let total: f64 = joint.cells().iter().map(|c| c.fraction).sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn mnsa_works_with_joint_histograms_enabled() {
    let db = correlated_db();
    let q = bind(&db, "SELECT * FROM sensor WHERE temp < 90 AND alarm = 1");
    let engine = MnsaEngine::new(MnsaConfig::default());
    let mut cat =
        StatsCatalog::new().with_build_options(BuildOptions::default().with_joint_histograms());
    let outcome = engine.run_query(&db, &mut cat, &q).unwrap();
    // MNSA terminates normally and never builds outside the candidate set.
    let candidates = candidate_statistics(&q);
    for id in outcome.created {
        assert!(candidates.contains(&cat.statistic(id).unwrap().descriptor));
    }
}

#[test]
fn joint_build_costs_more_than_plain_multicolumn() {
    let db = correlated_db();
    let t = db.table_id("sensor").unwrap();
    let mut plain = StatsCatalog::new();
    plain
        .create_statistic(&db, StatDescriptor::multi(t, vec![1, 2]))
        .unwrap();
    let mut joint =
        StatsCatalog::new().with_build_options(BuildOptions::default().with_joint_histograms());
    joint
        .create_statistic(&db, StatDescriptor::multi(t, vec![1, 2]))
        .unwrap();
    assert!(
        joint.creation_work() > plain.creation_work(),
        "the second construction phase must be charged"
    );
}
