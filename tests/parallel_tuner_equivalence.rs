//! Differential test harness: parallel workload tuning must be
//! **bit-identical** to serial tuning.
//!
//! [`ParallelTuner`] speculates per-query MNSA runs on snapshot catalogs and
//! commits them in workload order (replaying validated speculations,
//! re-running invalidated ones). Its contract is exact equivalence with
//! [`MnsaEngine::run_workload`] — same per-query outcomes (including
//! `StatId`s and optimizer call counts), same final catalog. This harness
//! checks the contract differentially across thread counts, workload seeds,
//! MNSA variants, and the [`OfflineTuner`] / advisor layers above.

use autostats::{
    advise, advise_parallel, Equivalence, MnsaConfig, MnsaEngine, OfflineTuner, ParallelTuner,
};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use query::{bind_statement, BoundSelect, BoundStatement};
use stats::{StatDescriptor, StatsCatalog};
use storage::Database;

fn test_db(seed: u64) -> Database {
    build_tpcd(&TpcdConfig {
        scale: 0.004,
        zipf: ZipfSpec::Mixed,
        seed,
    })
}

fn workload(db: &Database, n: usize, seed: u64) -> Vec<BoundSelect> {
    let spec = WorkloadSpec::new(0, Complexity::Complex, n).with_seed(seed);
    RagsGenerator::generate(db, &spec)
        .iter()
        .filter_map(|stmt| match bind_statement(db, stmt) {
            Ok(BoundStatement::Select(q)) => Some(q),
            _ => None,
        })
        .collect()
}

/// Catalog state relevant to equivalence: active descriptors with their
/// ids, plus the drop-list, plus work meters.
fn catalog_state(catalog: &StatsCatalog) -> (Vec<(u32, StatDescriptor)>, Vec<u32>, f64) {
    let mut active: Vec<(u32, StatDescriptor)> = catalog
        .active()
        .map(|s| (s.id.0, s.descriptor.clone()))
        .collect();
    active.sort_by_key(|(id, _)| *id);
    (
        active,
        catalog.drop_list().map(|id| id.0).collect(),
        catalog.creation_work(),
    )
}

#[test]
fn outcomes_identical_across_thread_counts() {
    for seed in [3u64, 11, 29] {
        let db = test_db(seed);
        let queries = workload(&db, 18, seed * 7 + 1);
        assert!(
            queries.len() > 4,
            "workload generator produced too few queries"
        );
        let engine = MnsaEngine::new(MnsaConfig::default());

        let mut serial_catalog = StatsCatalog::new();
        let serial = engine
            .run_workload(&db, &mut serial_catalog, &queries)
            .unwrap();
        let serial_state = catalog_state(&serial_catalog);

        for threads in [2usize, 4, 8] {
            let tuner = ParallelTuner::new(engine.clone(), threads);
            let mut catalog = StatsCatalog::new();
            let outcomes = tuner.run_workload(&db, &mut catalog, &queries).unwrap();
            assert_eq!(
                serial, outcomes,
                "outcome divergence at seed={seed} threads={threads}"
            );
            assert_eq!(
                serial_state,
                catalog_state(&catalog),
                "catalog divergence at seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn mnsad_drop_lists_identical_across_thread_counts() {
    let db = test_db(5);
    let queries = workload(&db, 16, 13);
    let engine = MnsaEngine::new(MnsaConfig::default().with_drop_detection());

    let mut serial_catalog = StatsCatalog::new();
    let serial = engine
        .run_workload(&db, &mut serial_catalog, &queries)
        .unwrap();

    for threads in [2usize, 4, 8] {
        let tuner = ParallelTuner::new(engine.clone(), threads);
        let mut catalog = StatsCatalog::new();
        let outcomes = tuner.run_workload(&db, &mut catalog, &queries).unwrap();
        assert_eq!(serial, outcomes, "MNSA/D divergence at threads={threads}");
        assert_eq!(
            serial_catalog.drop_list().collect::<Vec<_>>(),
            catalog.drop_list().collect::<Vec<_>>(),
            "drop-list divergence at threads={threads}"
        );
    }
}

#[test]
fn parallel_on_pretuned_catalog_matches_serial() {
    // Start from a non-empty catalog (some statistics already built), so
    // speculation validates against real pre-existing state and replayed
    // ids must line up with non-zero-based serial ids.
    let db = test_db(17);
    let queries = workload(&db, 14, 23);
    let (first_half, second_half) = queries.split_at(queries.len() / 2);
    let engine = MnsaEngine::new(MnsaConfig::default());

    let mut serial_catalog = StatsCatalog::new();
    engine
        .run_workload(&db, &mut serial_catalog, first_half)
        .unwrap();
    let serial = engine
        .run_workload(&db, &mut serial_catalog, second_half)
        .unwrap();

    let tuner = ParallelTuner::new(engine.clone(), 4);
    let mut catalog = StatsCatalog::new();
    engine.run_workload(&db, &mut catalog, first_half).unwrap();
    let parallel = tuner.run_workload(&db, &mut catalog, second_half).unwrap();

    assert_eq!(serial, parallel);
    assert_eq!(catalog_state(&serial_catalog), catalog_state(&catalog));
}

#[test]
fn offline_tuner_report_identical_across_thread_counts() {
    let db = test_db(9);
    let queries = workload(&db, 14, 31);

    let serial_tuner = OfflineTuner::default();
    let mut serial_catalog = StatsCatalog::new();
    let serial_report = serial_tuner
        .tune(&db, &mut serial_catalog, &queries)
        .unwrap();

    for threads in [2usize, 4, 8] {
        let tuner = OfflineTuner {
            threads,
            ..OfflineTuner::default()
        };
        let mut catalog = StatsCatalog::new();
        let report = tuner.tune(&db, &mut catalog, &queries).unwrap();
        assert_eq!(
            serial_report, report,
            "TuningReport divergence at threads={threads}"
        );
        assert_eq!(catalog_state(&serial_catalog), catalog_state(&catalog));
        assert_eq!(serial_catalog.epoch(), catalog.epoch());
    }
}

#[test]
fn advisor_report_identical_across_thread_counts() {
    let db = test_db(21);
    let queries = workload(&db, 12, 41);
    let mut catalog = StatsCatalog::new();
    // Pre-build one statistic the workload may not need, so Drop
    // recommendations are possible.
    let t = db.table_ids().next().unwrap();
    catalog
        .create_statistic(&db, StatDescriptor::single(t, 0))
        .unwrap();

    let serial = advise(
        &db,
        &catalog,
        &queries,
        MnsaConfig::default(),
        Equivalence::paper_default(),
    )
    .unwrap();
    for threads in [2usize, 4, 8] {
        let parallel = advise_parallel(
            &db,
            &catalog,
            &queries,
            MnsaConfig::default(),
            Equivalence::paper_default(),
            threads,
        )
        .unwrap();
        assert_eq!(serial, parallel, "advisor divergence at threads={threads}");
    }
}

#[test]
fn aging_config_falls_back_to_serial_semantics() {
    // With aging enabled the tuner must not speculate; output still equals
    // the serial engine because it *is* the serial engine path.
    let db = test_db(2);
    let queries = workload(&db, 8, 19);
    let engine = MnsaEngine::new(MnsaConfig {
        aging: Some(stats::AgingPolicy::default()),
        ..MnsaConfig::default()
    });
    let mut a = StatsCatalog::new();
    let mut b = StatsCatalog::new();
    let serial = engine.run_workload(&db, &mut a, &queries).unwrap();
    let tuner = ParallelTuner::new(engine, 8);
    let parallel = tuner.run_workload(&db, &mut b, &queries).unwrap();
    assert_eq!(serial, parallel);
}
