//! The production-telemetry cost contract, tested differentially:
//! **telemetry may never change an outcome.**
//!
//! Latency histograms, span sampling, the slow-query reservoir, windowed
//! rollups, and health snapshots are observation-only. With them fully on
//! vs fully off, the same driven workload must leave bit-identical
//! catalogs, journals, query outputs, estimated costs, and optimizer
//! plans — and the executor must return bit-identical rows and work at 1,
//! 2, and 8 threads whether traced or not.
//!
//! Wall-clock values (latency quantiles, slow-query latencies, span
//! timestamps) are explicitly *outside* the bit-identity contract: the
//! last test pins that none of them can leak into the surfaces the
//! contract covers (catalog snapshots, the journal).

use autod::{AutodConfig, OnlineService, TelemetryConfig};
use autostats::{AutoStatsManager, CreationPolicy, ManagerConfig};
use executor::{execute_plan_opts, ExecOptions, StatementOutcome};
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, parse_statement, BoundSelect, BoundStatement};
use storage::{ColumnDef, DataType, Database, Schema, Value};

const WORKLOAD: &[&str] = &[
    "SELECT e.empid, d.dname FROM employees e, departments d \
     WHERE e.deptid = d.deptid AND e.age < 30 AND e.salary > 200",
    "SELECT empid FROM employees WHERE age < 25",
    "UPDATE employees SET age = 41 WHERE deptid = 3",
    "SELECT e.empid, d.dname FROM employees e, departments d \
     WHERE e.deptid = d.deptid AND e.salary > 240",
    "DELETE FROM employees WHERE empid < 40",
    "SELECT empid FROM employees WHERE salary > 240",
];

fn test_db() -> Database {
    let mut db = Database::new();
    let emp = db
        .create_table(
            "employees",
            Schema::new(vec![
                ColumnDef::new("empid", DataType::Int),
                ColumnDef::new("deptid", DataType::Int),
                ColumnDef::new("age", DataType::Int),
                ColumnDef::new("salary", DataType::Int),
            ]),
        )
        .unwrap();
    let dept = db
        .create_table(
            "departments",
            Schema::new(vec![
                ColumnDef::new("deptid", DataType::Int),
                ColumnDef::new("dname", DataType::Str),
            ]),
        )
        .unwrap();
    for i in 0..3000i64 {
        let salary = if i % 100 == 0 { 250 } else { i % 200 };
        db.table_mut(emp)
            .insert(vec![
                Value::Int(i),
                Value::Int(i % 20),
                Value::Int(20 + (i % 50)),
                Value::Int(salary),
            ])
            .unwrap();
    }
    for d in 0..20i64 {
        db.table_mut(dept)
            .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
            .unwrap();
    }
    #[allow(deprecated)]
    db.table_mut(emp).reset_modification_counter();
    #[allow(deprecated)]
    db.table_mut(dept).reset_modification_counter();
    db
}

fn start_service(telemetry_on: bool) -> OnlineService {
    let obs = if telemetry_on {
        obsv::Obs::enabled()
    } else {
        obsv::Obs::disabled()
    };
    let telemetry = if telemetry_on {
        TelemetryConfig {
            slowlog_k: 8,
            sample_one_in: 1, // every query gets a full span tree
            ..TelemetryConfig::default()
        }
    } else {
        TelemetryConfig {
            slowlog_k: 0,
            sample_one_in: 0,
            ..TelemetryConfig::default()
        }
    };
    let mgr = AutoStatsManager::new_with_obs(
        test_db(),
        ManagerConfig {
            creation: CreationPolicy::Manual,
            auto_maintain: false,
            ..ManagerConfig::default()
        },
        obs,
    );
    OnlineService::start(
        mgr.serve(),
        AutodConfig {
            budget_per_tick: f64::INFINITY,
            shrink_every: 2,
            telemetry,
            ..AutodConfig::default()
        },
    )
}

/// Everything the bit-identity contract covers, from one driven service:
/// per-statement outputs (rows, work, estimated cost), the final catalog
/// snapshot, the journal rendering, the final generation, and the plans
/// the optimizer picks for the SELECTs against the final catalog.
fn drive(telemetry_on: bool) -> (Vec<String>, String, String, u64, Vec<String>) {
    let svc = start_service(telemetry_on);
    let handle = svc.handle(1);
    let mut outcomes = Vec::new();
    for (i, sql) in WORKLOAD.iter().enumerate() {
        match handle.run_sql(sql).unwrap() {
            StatementOutcome::Query {
                output,
                estimated_cost,
            } => outcomes.push(format!(
                "query rows={:?} work={} cost={}",
                output.rows,
                output.work.to_bits(),
                estimated_cost.to_bits()
            )),
            other => outcomes.push(format!("{other:?}")),
        }
        if i % 2 == 1 {
            svc.tick_wait().unwrap();
            // Exercise the telemetry read paths mid-drive: none of these
            // may perturb the tuning trajectory.
            let _ = svc.roll_window((i + 1) as u64);
            let _ = svc.health();
        }
    }
    for _ in 0..4 {
        svc.tick_wait().unwrap();
    }
    let _ = svc.drain_slow_queries();
    let (db, report) = svc.shutdown().unwrap();
    assert!(report.error.is_none());
    let optimizer = Optimizer::default();
    let plans: Vec<String> = WORKLOAD
        .iter()
        .filter_map(|sql| {
            let stmt = parse_statement(sql).unwrap();
            match bind_statement(&db, &stmt) {
                Ok(BoundStatement::Select(q)) => Some(q),
                _ => None,
            }
        })
        .map(|q: BoundSelect| {
            let o = optimizer
                .optimize(
                    &db,
                    &q,
                    report.catalog.full_view(),
                    &OptimizeOptions::default(),
                )
                .unwrap();
            format!("{:?} cost={}", o.plan, o.cost.to_bits())
        })
        .collect();
    (
        outcomes,
        format!("{:?}", report.catalog.snapshot()),
        report.session.to_json(),
        report.generation,
        plans,
    )
}

/// Telemetry fully on vs fully off: every bit-identity surface agrees.
#[test]
fn telemetry_on_vs_off_is_bit_identical() {
    let on = drive(true);
    let off = drive(false);
    assert_eq!(on.0, off.0, "per-statement outcomes diverged");
    assert_eq!(on.1, off.1, "catalog snapshots diverged");
    assert_eq!(on.2, off.2, "journals diverged");
    assert_eq!(on.3, off.3, "epoch generations diverged");
    assert_eq!(on.4, off.4, "optimizer plans diverged");
}

/// The executor returns bit-identical rows and work at 1, 2, and 8 worker
/// threads, traced or untraced — six combinations, one reference.
#[test]
fn executor_is_thread_and_trace_invariant() {
    let db = test_db();
    let stmt = parse_statement(WORKLOAD[0]).unwrap();
    let BoundStatement::Select(query) = bind_statement(&db, &stmt).unwrap() else {
        panic!("expected a select");
    };
    let optimizer = Optimizer::default();
    let catalog = stats::StatsCatalog::new();
    let plan = optimizer
        .optimize(
            &db,
            &query,
            catalog.full_view(),
            &OptimizeOptions::default(),
        )
        .unwrap()
        .plan;
    let feedback = obsv::FeedbackLog::disabled();
    let mut reference: Option<(Vec<Vec<Value>>, u64)> = None;
    for threads in [1usize, 2, 8] {
        for traced in [false, true] {
            let tracer = if traced {
                obsv::Tracer::enabled()
            } else {
                obsv::Tracer::disabled()
            };
            let out = execute_plan_opts(
                &db,
                &query,
                &plan,
                &optimizer.params,
                &tracer,
                &feedback,
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            let got = (out.rows, out.work.to_bits());
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(
                    r, &got,
                    "threads={threads} traced={traced} diverged from reference"
                ),
            }
        }
    }
}

/// The slow-query reservoir's export is one valid trace stream whose span
/// trees contain real executor operators.
#[test]
fn slowlog_export_passes_trace_checks() {
    let svc = start_service(true);
    let handle = svc.handle(1);
    for sql in WORKLOAD {
        handle.run_sql(sql).unwrap();
    }
    svc.tick_wait().unwrap();
    let slow = svc.drain_slow_queries();
    assert!(!slow.is_empty(), "one_in=1 sampling must capture queries");
    assert!(slow.iter().all(|q| !q.events.is_empty()));
    let jsonl = obsv::slowlog::to_jsonl(&slow);
    let summary = obsv::check::check_jsonl(&jsonl).expect("slowlog export is a valid trace");
    assert!(summary.spans > 0);
    assert!(jsonl.contains("\"slowlog.query\""), "wrapper spans present");
    assert!(jsonl.contains("exec."), "executor operator spans present");
    svc.shutdown().unwrap();
}

/// Wall-clock telemetry is excluded from the bit-identity surfaces by
/// construction: no latency-flavoured key can appear in the catalog
/// snapshot or the journal, while the live metrics registry (outside the
/// contract) does carry them.
#[test]
fn wall_clock_values_stay_out_of_bit_identity_surfaces() {
    let svc = start_service(true);
    let handle = svc.handle(1);
    for sql in WORKLOAD {
        handle.run_sql(sql).unwrap();
    }
    svc.tick_wait().unwrap();
    let metrics_text = svc.metrics().snapshot().render_text();
    assert!(
        metrics_text.contains("autod.query.latency_ns"),
        "registry carries wall-clock latency: it is observable"
    );
    let health = svc.health();
    assert!(health.latency_count > 0, "health reports latency");
    let (_, report) = svc.shutdown().unwrap();
    let catalog_text = format!("{:?}", report.catalog.snapshot());
    let journal_text = report.session.to_json();
    for surface in [&catalog_text, &journal_text] {
        assert!(
            !surface.contains("latency") && !surface.contains("_ns"),
            "wall-clock telemetry leaked into a bit-identity surface"
        );
    }
}
