//! End-to-end fault injection (proptest).
//!
//! The panic-free contract of the tuning pipeline, exercised under random
//! schedules of the [`autostats::Fault`] failure points: whatever
//! combination of empty tables, dropped statistics, degenerate samplers and
//! zero-bucket histograms is injected — before tuning, between tuning and
//! execution, or both — every entry point either succeeds with valid
//! numbers (selectivities in [0, 1], finite plan costs) or returns a typed
//! error. Nothing panics.

use autostats::manager::{AutoStatsManager, ManagerConfig};
use autostats::{advise, Equivalence, Fault, FaultPlan, MnsaConfig, MnsaEngine, OfflineTuner};
use optimizer::{OptimizeOptions, Optimizer, PlanNode};
use proptest::prelude::*;
use query::{bind_statement, parse_statement, BoundSelect, BoundStatement};
use stats::StatsCatalog;
use storage::{ColumnDef, DataType, Database, Schema, TableId, Value};

fn build_db(rows: usize) -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(
            "facts",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ]),
        )
        .unwrap();
    let d = db
        .create_table(
            "dim",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("label", DataType::Str),
            ]),
        )
        .unwrap();
    for i in 0..rows as i64 {
        db.table_mut(t)
            .insert(vec![
                Value::Int(i % 40),
                Value::Int(if i % 50 == 0 { 1 } else { 0 }),
                Value::Int(i % 7),
            ])
            .unwrap();
    }
    for i in 0..(rows as i64 / 10).max(1) {
        db.table_mut(d)
            .insert(vec![Value::Int(i), Value::Str(format!("x{i}"))])
            .unwrap();
    }
    db
}

fn workload(db: &Database) -> Vec<BoundSelect> {
    [
        "SELECT * FROM facts WHERE a = 1",
        "SELECT * FROM facts, dim WHERE facts.k = dim.k AND a = 1",
        "SELECT b, COUNT(*) FROM facts WHERE a = 1 GROUP BY b",
        "SELECT * FROM facts WHERE b < 3 AND a = 0",
    ]
    .iter()
    .map(
        |sql| match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => unreachable!(),
        },
    )
    .collect()
}

/// Every cost/cardinality estimate in the plan tree is a finite number.
fn assert_plan_finite(plan: &PlanNode) {
    plan.walk(&mut |n| {
        assert!(n.est_rows.is_finite(), "non-finite est_rows {}", n.est_rows);
        assert!(n.est_rows >= 0.0, "negative est_rows {}", n.est_rows);
        assert!(n.est_cost.is_finite(), "non-finite est_cost {}", n.est_cost);
    });
}

/// Every selectivity a built statistic can produce stays in [0, 1].
fn assert_selectivities_sane(catalog: &StatsCatalog) {
    let probes = [
        Value::Int(0),
        Value::Int(1),
        Value::Int(-999),
        Value::Float(f64::INFINITY),
        Value::Str("x1".into()),
    ];
    for s in catalog.active() {
        for p in &probes {
            for sel in [
                s.histogram.selectivity_eq(p),
                s.histogram.selectivity_le(p),
                s.histogram.selectivity_lt(p),
            ] {
                assert!(!sel.is_nan(), "NaN selectivity");
                assert!((0.0..=1.0).contains(&sel), "selectivity {sel} out of range");
            }
        }
    }
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::TruncateTable(TableId(0))),
        Just(Fault::TruncateTable(TableId(1))),
        Just(Fault::TruncateTable(TableId(99))), // unknown table
        Just(Fault::TruncateAllTables),
        Just(Fault::DropAllStatistics),
        Just(Fault::DegenerateSampler),
        Just(Fault::ZeroBucketHistograms),
    ]
}

fn arb_plan() -> impl Strategy<Value = Vec<Fault>> {
    prop::collection::vec(arb_fault(), 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// MNSA, MNSA/D, offline tuning (with Shrinking Set) and the advisor
    /// never panic under injected faults; every produced plan has finite
    /// estimates and every built statistic estimates within [0, 1].
    #[test]
    fn tuning_pipeline_survives_faults(
        pre in arb_plan(),
        mid in arb_plan(),
        rows in 0usize..400,
        drop_detection in prop_oneof![Just(true), Just(false)],
    ) {
        let mut db = build_db(rows);
        let queries = workload(&db);
        let mut catalog = StatsCatalog::new();

        let pre_plan = pre.iter().fold(FaultPlan::new(), |p, f| p.with(f.clone()));
        pre_plan.inject(&mut db, &mut catalog);

        let config = if drop_detection {
            MnsaConfig::default().with_drop_detection()
        } else {
            MnsaConfig::default()
        };
        let engine = MnsaEngine::new(config);

        // Per-query MNSA with faults injected between queries.
        let mid_plan = mid.iter().fold(FaultPlan::new(), |p, f| p.with(f.clone()));
        for (i, q) in queries.iter().enumerate() {
            let _ = engine.run_query(&db, &mut catalog, q);
            if i == 1 {
                mid_plan.inject(&mut db, &mut catalog);
            }
        }
        assert_selectivities_sane(&catalog);

        // Offline tuning (parallel MNSA + Shrinking Set) on the faulted state.
        let tuner = OfflineTuner { mnsa: config, threads: 2, ..Default::default() };
        let _ = tuner.tune(&db, &mut catalog, &queries);
        assert_selectivities_sane(&catalog);

        // The advisor runs read-only on the same state.
        let _ = advise(&db, &catalog, &queries, config, Equivalence::paper_default());

        // Whatever survives must still optimize to finite plans.
        let optimizer = Optimizer::default();
        for q in &queries {
            if let Ok(r) = optimizer.optimize(
                &db, q, catalog.full_view(), &OptimizeOptions::default(),
            ) {
                assert!(r.cost.is_finite(), "non-finite plan cost {}", r.cost);
                assert_plan_finite(&r.plan);
            }
        }
    }

    /// The `AutoStatsManager` facade keeps its report/error contract under
    /// faults: every statement returns a valid outcome (finite work) or a
    /// typed `ManagerError`, and cumulative tuning numbers stay finite.
    #[test]
    fn manager_reports_or_typed_errors_under_faults(
        pre in arb_plan(),
        mid in arb_plan(),
        rows in 0usize..400,
    ) {
        let mut db = build_db(rows);
        let mut catalog = StatsCatalog::new();
        let pre_plan = pre.iter().fold(FaultPlan::new(), |p, f| p.with(f.clone()));
        pre_plan.inject(&mut db, &mut catalog);

        let mut mgr = AutoStatsManager::new(db, ManagerConfig::default());
        let statements = [
            "SELECT * FROM facts WHERE a = 1",
            "INSERT INTO facts VALUES (1, 1, 1)",
            "SELECT b, COUNT(*) FROM facts WHERE a = 1 GROUP BY b",
            "DELETE FROM facts WHERE b = 3",
            "SELECT * FROM facts, dim WHERE facts.k = dim.k",
        ];
        let mid_plan = mid.iter().fold(FaultPlan::new(), |p, f| p.with(f.clone()));
        for (i, sql) in statements.iter().enumerate() {
            match mgr.execute_sql(sql) {
                Ok(outcome) => assert!(
                    outcome.work().is_finite() && outcome.work() >= 0.0,
                    "invalid work {}",
                    outcome.work()
                ),
                Err(e) => {
                    // Typed, displayable, and never empty.
                    assert!(!e.to_string().is_empty());
                }
            }
            if i == 2 {
                // Corrupt the live manager state mid-workload.
                let mut db = std::mem::take(mgr.database_mut());
                mid_plan.inject(&mut db, mgr.catalog_mut());
                *mgr.database_mut() = db;
            }
        }
        let report = mgr.tuning_report();
        assert!(report.creation_work.is_finite());
        assert!(report.overhead_work.is_finite());
        assert!(mgr.execution_work().is_finite());
        assert_selectivities_sane(mgr.catalog());
    }
}
