//! Ground-truth plumbing of the estimation-quality harness.
//!
//! `exp_cardbench` takes its true cardinalities from the columnar executor's
//! `exec.op.*` spans. These tests pin that channel: (1) differentially — the
//! span-reported root cardinality must agree exactly with the retained
//! row-at-a-time reference interpreter on seeded adversarial workloads (the
//! regression that motivated this: top-level Sort/HashAggregate spans used
//! to report their *input* count) — and (2) by property — the q-error
//! metric's value and degenerate conventions.

use bench::experiments::cardbench::{operator_q_errors, q_error};
use datagen::{adversarial_queries, build_adversarial, AdversarialConfig, Regime};
use executor::{execute_plan_reference, execute_plan_traced};
use obsv::{ArgValue, EventKind};
use optimizer::{OptimizeOptions, Optimizer};
use proptest::prelude::*;
use query::{bind_statement, BoundSelect, BoundStatement, Statement};
use stats::StatsCatalog;
use storage::Database;

fn bound_workload(db: &Database, cfg: &AdversarialConfig, regime: Regime) -> Vec<BoundSelect> {
    adversarial_queries(db, cfg, regime, 25)
        .into_iter()
        .map(
            |q| match bind_statement(db, &Statement::Select(q)).unwrap() {
                BoundStatement::Select(b) => b,
                _ => unreachable!("adversarial workload is SELECT-only"),
            },
        )
        .collect()
}

/// The `rows_out` of the plan-root operator span: the span tree's only
/// direct `exec.op.*` child of `exec.query`. Begin events carry the parent
/// linkage, End events carry the counts.
fn root_operator_rows(events: &[obsv::Event]) -> i64 {
    let query_id = events
        .iter()
        .find(|e| e.kind == EventKind::Begin && e.name == "exec.query")
        .expect("query span present")
        .id;
    let root_op = events
        .iter()
        .find(|e| {
            e.kind == EventKind::Begin && e.parent == query_id && e.name.starts_with("exec.op.")
        })
        .expect("root operator span present")
        .id;
    let end = events
        .iter()
        .find(|e| e.kind == EventKind::End && e.id == root_op)
        .expect("root operator span closed");
    match end
        .args
        .iter()
        .find(|(k, _)| *k == "rows_out")
        .expect("rows_out recorded")
    {
        (_, ArgValue::Int(n)) => *n,
        (_, other) => panic!("rows_out has wrong type: {other:?}"),
    }
}

/// On every adversarial regime, the span-derived true cardinality of the
/// plan root must agree exactly with the reference interpreter's output
/// count, and every span must carry a finite estimate alongside it.
#[test]
fn span_truth_matches_reference_interpreter_on_adversarial_workloads() {
    let cfg = AdversarialConfig::tiny();
    let optimizer = Optimizer::default();
    let catalog = StatsCatalog::new();
    let mut checked = 0usize;
    for regime in Regime::ALL {
        let db = build_adversarial(&cfg, regime);
        for q in bound_workload(&db, &cfg, regime) {
            let plan = optimizer
                .optimize(&db, &q, catalog.full_view(), &OptimizeOptions::default())
                .unwrap()
                .plan;
            let tracer = obsv::Tracer::enabled();
            let out = execute_plan_traced(&db, &q, &plan, &optimizer.params, &tracer).unwrap();
            let events = tracer.flush();
            assert!(
                obsv::trace::validate(&events).is_empty(),
                "{regime}: trace defects"
            );

            let reference = execute_plan_reference(&db, &q, &plan, &optimizer.params).unwrap();
            assert_eq!(
                out.rows, reference.rows,
                "{regime}: columnar and reference outputs diverge"
            );
            // The ground-truth channel itself: the root operator span (the
            // last operator before projection, including the Sort and
            // HashAggregate wrappers) reports the reference row count.
            assert_eq!(
                root_operator_rows(&events),
                reference.rows.len() as i64,
                "{regime}: span-derived truth disagrees with the reference interpreter"
            );
            // One span per plan node, each with a well-formed (est, actual)
            // pair: the q-errors the harness pools are complete.
            let pairs = operator_q_errors(&events);
            assert_eq!(
                pairs.len(),
                plan.nodes().len(),
                "{regime}: some operator span lost its est/actual pair"
            );
            assert!(pairs.iter().all(|q| q.is_finite() && *q >= 1.0));
            checked += 1;
        }
    }
    assert_eq!(checked, 4 * 25);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// q-error is ≥ 1 and finite for every realistic (est, actual) pair —
    /// including empty actuals, where the 0.5 floor keeps it defined.
    #[test]
    fn q_error_at_least_one_and_finite(
        est in prop_oneof![Just(0.0), 0.0..1e9],
        actual in prop_oneof![Just(0.0), 0.0..1e9],
    ) {
        let q = q_error(est, actual);
        prop_assert!(q >= 1.0, "q-error {q} below 1 for ({est}, {actual})");
        prop_assert!(q.is_finite());
        // Symmetry: over- and under-estimation are penalized alike.
        let flipped = q_error(actual, est);
        prop_assert!((q - flipped).abs() <= q * 1e-12);
    }

    /// The degenerate conventions: a correct empty estimate scores a
    /// perfect 1; scaling both sides equally leaves q-error unchanged.
    #[test]
    fn q_error_degenerate_conventions(scale in 1.0f64..1e6) {
        prop_assert_eq!(q_error(0.0, 0.0), 1.0);
        prop_assert_eq!(q_error(scale, scale), 1.0);
        // est = 0 vs non-empty actual degrades smoothly (2·actual), never
        // to infinity.
        let q = q_error(0.0, scale);
        prop_assert!(q.is_finite() && q >= scale);
    }
}
