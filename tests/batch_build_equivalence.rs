//! Differential test harness: shared-scan batched statistics creation must
//! be **bit-identical** to one-at-a-time creation.
//!
//! [`StatsCatalog::create_statistics_batch`] serves every statistic that
//! needs building on a table from one shared pass (column extraction,
//! histogram, tuple-NDV, joint histogram each computed once). Its contract
//! is exact equivalence with a serial `create_statistic` loop: same ids in
//! the same order, same histograms and densities, same per-statistic
//! `build_cost`, same creation-work total to the bit. This harness checks
//! the contract over random column data (with NULLs), duplicate and
//! already-built descriptors, joint-histogram builds, the sampled fallback
//! path, and the candidate sets of RAGS workloads on seeded TPC-D.

use autostats::candidate_statistics;
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use proptest::prelude::*;
use query::{bind_statement, BoundStatement};
use stats::{BuildOptions, SampleSpec, StatDescriptor, StatId, StatsCatalog};
use storage::{ColumnDef, DataType, Database, Schema, TableId, Value};

/// Serial loop vs batch call on the same descriptor list: snapshots (every
/// statistic field, work meters, id counter) must match exactly.
fn assert_batch_matches_serial(
    db: &Database,
    table: TableId,
    descriptors: &[StatDescriptor],
    options: &BuildOptions,
) {
    let mut serial = StatsCatalog::new();
    serial.set_build_options(options.clone());
    let serial_ids: Vec<Result<StatId, _>> = descriptors
        .iter()
        .map(|d| serial.create_statistic(db, d.clone()))
        .collect();

    let mut batched = StatsCatalog::new();
    batched.set_build_options(options.clone());
    let batch_ids = batched.create_statistics_batch(db, table, descriptors);

    match (&batch_ids, serial_ids.iter().find(|r| r.is_err())) {
        (Ok(ids), None) => {
            let serial_ok: Vec<StatId> = serial_ids.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(*ids, serial_ok, "id divergence");
        }
        (Err(_), Some(_)) => {}
        (b, s) => panic!("error divergence: batch={b:?} serial_first_err={s:?}"),
    }
    assert_eq!(batched.snapshot(), serial.snapshot(), "catalog divergence");
    assert_eq!(
        batched.creation_work().to_bits(),
        serial.creation_work().to_bits(),
        "creation-work divergence"
    );
}

fn table_db(cols: &[Vec<Option<i64>>]) -> (Database, TableId) {
    let defs: Vec<ColumnDef> = (0..cols.len())
        .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int).nullable())
        .collect();
    let mut db = Database::new();
    let t = db.create_table("t", Schema::new(defs)).unwrap();
    for r in 0..cols[0].len() {
        db.table_mut(t)
            .insert(
                cols.iter()
                    .map(|c| c[r].map_or(Value::Null, Value::Int))
                    .collect(),
            )
            .unwrap();
    }
    (db, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random NULL-bearing columns, random descriptor lists (duplicates
    /// included), all three option regimes: default full scan, joint
    /// histograms, and the seeded-sampling fallback.
    #[test]
    fn batch_matches_serial_on_random_tables(
        a in prop::collection::vec(prop::option::of(0i64..15), 20..300),
        perm in 0usize..6,
        dup in 0u8..2,
    ) {
        let n = a.len();
        let b: Vec<Option<i64>> = (0..n as i64).map(|i| Some(i % 9)).collect();
        let c: Vec<Option<i64>> = (0..n as i64)
            .map(|i| if i % 11 == 0 { None } else { Some(i % 4) })
            .collect();
        let (db, t) = table_db(&[a, b, c]);

        let mut descs = vec![
            StatDescriptor::single(t, 0),
            StatDescriptor::single(t, 1),
            StatDescriptor::multi(t, vec![0, 1]),
            StatDescriptor::multi(t, vec![2, 0, 1]),
            StatDescriptor::multi(t, vec![0, 2]),
        ];
        let k = perm % descs.len();
        descs.rotate_left(k);
        if dup == 1 {
            descs.push(descs[0].clone());
        }

        for options in [
            BuildOptions::default(),
            BuildOptions::default().with_joint_histograms(),
            BuildOptions {
                sample: SampleSpec::Fraction { fraction: 0.3, min_rows: 8 },
                ..Default::default()
            },
        ] {
            assert_batch_matches_serial(&db, t, &descs, &options);
        }
    }
}

#[test]
fn batch_matches_serial_on_tpcd_candidates() {
    for seed in [3u64, 17] {
        let db = build_tpcd(&TpcdConfig {
            scale: 0.004,
            zipf: ZipfSpec::Mixed,
            seed,
        });
        let spec = WorkloadSpec::new(0, Complexity::Complex, 20).with_seed(seed + 5);
        // Candidate statistics of a whole workload, grouped per table — the
        // shape MNSA rounds and CreateAll* policies feed the batch API.
        let mut by_table: Vec<(TableId, Vec<StatDescriptor>)> = Vec::new();
        for stmt in RagsGenerator::generate(&db, &spec) {
            let Ok(BoundStatement::Select(q)) = bind_statement(&db, &stmt) else {
                continue;
            };
            for d in candidate_statistics(&q) {
                match by_table.iter_mut().find(|(t, _)| *t == d.table) {
                    Some((_, ds)) => ds.push(d),
                    None => by_table.push((d.table, vec![d])),
                }
            }
        }
        assert!(!by_table.is_empty());

        let mut serial = StatsCatalog::new();
        let mut batched = StatsCatalog::new();
        for (table, descs) in &by_table {
            for d in descs {
                serial.create_statistic(&db, d.clone()).unwrap();
            }
            batched.create_statistics_batch(&db, *table, descs).unwrap();
        }
        assert_eq!(batched.snapshot(), serial.snapshot(), "seed {seed}");
        assert_eq!(
            batched.creation_work().to_bits(),
            serial.creation_work().to_bits()
        );
    }
}

#[test]
fn batch_handles_mixed_tables_and_existing_statistics() {
    let db = build_tpcd(&TpcdConfig {
        scale: 0.002,
        zipf: ZipfSpec::Fixed(0.0),
        seed: 9,
    });
    let mut ids: Vec<TableId> = db.table_ids().collect();
    ids.sort();
    let (ta, tb) = (ids[0], ids[1]);
    // Pre-build one statistic, then batch a list that mixes: the pre-built
    // descriptor (dedup), a foreign-table descriptor (serial fallback), and
    // fresh ones (shared scan).
    let descs = vec![
        StatDescriptor::single(ta, 0),
        StatDescriptor::single(ta, 1),
        StatDescriptor::single(tb, 0),
        StatDescriptor::multi(ta, vec![1, 0]),
    ];
    let mut serial = StatsCatalog::new();
    serial.create_statistic(&db, descs[0].clone()).unwrap();
    let serial_ids: Vec<StatId> = descs
        .iter()
        .map(|d| serial.create_statistic(&db, d.clone()).unwrap())
        .collect();

    let mut batched = StatsCatalog::new();
    batched.create_statistic(&db, descs[0].clone()).unwrap();
    let batch_ids = batched.create_statistics_batch(&db, ta, &descs).unwrap();

    assert_eq!(batch_ids, serial_ids);
    assert_eq!(batched.snapshot(), serial.snapshot());
}
