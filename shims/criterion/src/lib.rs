//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark closure a small fixed number of iterations and prints
//! mean wall-clock per iteration. No statistics, plotting, or CLI parsing —
//! just enough API (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `black_box`, `criterion_group!`, `criterion_main!`) for the workspace
//! benches to compile and produce usable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 10;

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = MEASURE_ITERS;
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / b.iters as u32
    };
    println!(
        "bench: {name:<50} {per_iter:>12.2?}/iter ({} iters)",
        b.iters
    );
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Called by `criterion_main!`; nothing to aggregate offline.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        for n in [10u64, 100] {
            g.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        tiny_bench(&mut c);
        c.final_summary();
    }
}
