//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as markers (no
//! serde-based wire format is exercised offline; the one JSON report writer
//! is hand-rolled). These derives therefore expand to nothing, which still
//! satisfies the marker-trait bounds via serde's blanket impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
