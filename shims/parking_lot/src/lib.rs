//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the parking_lot API shape the workspace
//! uses: non-poisoning `lock()` / `read()` / `write()` that return guards
//! directly instead of `Result`s. Poisoned std locks are recovered via
//! `into_inner`, matching parking_lot's "no poisoning" semantics.

use std::sync::{
    MutexGuard as StdMutexGuard, RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn threads_share_mutex() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
