//! Offline stand-in for `serde`.
//!
//! The workspace uses `Serialize`/`Deserialize` only as derive markers; no
//! serde data format runs offline (report JSON is hand-rolled in the bench
//! crate). The traits are therefore empty markers with blanket impls, and
//! the re-exported derives expand to nothing. Trait and derive-macro names
//! may coexist because they live in different namespaces.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

impl<T> Serialize for T {}

impl<'de, T> Deserialize<'de> for T {}
