//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 call shape
//! (closure receives a `&Scope`, `scope` returns a `Result`), implemented on
//! top of `std::thread::scope`. Only the surface this workspace uses.

pub mod thread {
    use std::thread::ScopedJoinHandle;

    /// Scope handle passed to the `scope` closure (crossbeam-style).
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            self.0.spawn(move || f(&Scope(inner)))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads may be spawned.
    ///
    /// std's scope already propagates child panics by panicking on exit, so
    /// the error arm of the crossbeam signature is never produced here.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let sums: Vec<u64> = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7, 11, 15]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = super::thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
