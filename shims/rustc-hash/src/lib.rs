//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the same Fx (Firefox/rustc) multiply-rotate hash the real crate
//! ships: a non-cryptographic, *fixed-seed* hasher, so hash maps built on it
//! are fast and — unlike `std`'s `RandomState` — behave identically across
//! processes and runs. The workspace uses it for hot-path lookup tables whose
//! iteration order is never observable (or is sorted before use).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, fixed-seed hash map keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A speedy, fixed-seed hash set keyed with [`FxHasher`].
pub type FxHashSet<V> = HashSet<V, FxBuildHasher>;

/// [`BuildHasherDefault`] specialized to [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hash function: for each word, rotate the state, xor in the word,
/// multiply by a large odd constant. Not cryptographic, not DoS-resistant —
/// strictly an in-process lookup accelerator.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this spans two words");
        b.write(b"hello world, this spans two words");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<String, i64> = FxHashMap::default();
        m.insert("k".into(), 7);
        assert_eq!(m.get("k"), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn tail_bytes_change_hash() {
        // The length-marked tail means "ab" and "ab\0" must differ.
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }
}
