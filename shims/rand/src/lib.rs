//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal deterministic PRNG with the exact API surface the repo consumes:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`
//! and `seq::SliceRandom::{shuffle, choose}`. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically strong enough for the sampling
//! and Zipf quality tests, and fully deterministic for reproducibility.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in [0, 1) using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (`rand`'s `Standard`).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform sampling over a half-open or inclusive interval
/// (`rand`'s `SampleUniform`, collapsed to one method).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` when `inclusive` is false, `[lo, hi]`
    /// when true. Panics on an empty interval.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "cannot sample empty range"
        );
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Ranges samplable by `gen_range` (`rand`'s `SampleRange`). The single
/// generic impl per range shape lets integer-literal inference flow through
/// `gen_range(0..100)` exactly as with the real crate.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the workspace's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u: usize = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&u));
            let f: f64 = rng.gen_range(0.0..=4.0);
            assert!((0.0..=4.0).contains(&f));
        }
    }

    #[test]
    fn uniform_f64_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<i32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: &[i32] = &[];
        assert!(empty.choose(&mut rng).is_none());
    }
}
