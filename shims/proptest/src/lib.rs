//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` runner macro with `proptest_config`, strategies for
//! integer/float ranges, a small regex-string subset, tuples, `Just`,
//! `any::<T>()`, `prop_map`/`prop_filter`, `prop_oneof!`,
//! `prop::collection::vec`, `prop::option::of`, and the assertion macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports the
//! assertion message only), and the RNG is seeded deterministically from the
//! test's module path + name, so runs are reproducible.

pub mod test_runner {
    /// Deterministic xoshiro256++ generator for test-case sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Seed from the fully qualified test name (FNV-1a hash), so each
        /// test gets a stable, distinct stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::seeded(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in [0, n); n must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// `ProptestConfig` stand-in; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Outcome of one test-case execution.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the whole test with this message.
        Fail(String),
        /// `prop_assume!` rejection — the case is discarded and retried.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for property tests.
    ///
    /// `sample_one` returns `None` when a filter rejected the draw; the
    /// runner retries with fresh randomness (no shrinking in this shim).
    pub trait Strategy {
        type Value;

        fn sample_one(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy (no shrinking, so a plain trait object works).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample_one(&self, rng: &mut TestRng) -> Option<T> {
            self.0.sample_one(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_one(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample_one(&self, rng: &mut TestRng) -> Option<O> {
            self.source.sample_one(rng).map(&self.f)
        }
    }

    pub struct Filter<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample_one(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.source.sample_one(rng).filter(|v| (self.f)(v))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample_one(&self, rng: &mut TestRng) -> Option<T> {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].sample_one(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_one(&self, rng: &mut TestRng) -> Option<$t> {
                    if self.start >= self.end {
                        return None;
                    }
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    Some((self.start as i128 + v as i128) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_one(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo > hi {
                        return None;
                    }
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    Some((lo as i128 + v as i128) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample_one(&self, rng: &mut TestRng) -> Option<f64> {
            if self.start >= self.end {
                return None;
            }
            Some(self.start + rng.next_f64() * (self.end - self.start))
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample_one(&self, rng: &mut TestRng) -> Option<f64> {
            let (lo, hi) = (*self.start(), *self.end());
            if lo > hi {
                return None;
            }
            Some(lo + rng.next_f64() * (hi - lo))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident.$idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample_one(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.sample_one(rng)?,)+))
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    // --- regex-subset string strategy ------------------------------------

    /// One element of the pattern: a set of candidate chars plus a repeat
    /// count range.
    struct RegexElem {
        chars: Vec<char>,
        min: u32,
        max: u32,
    }

    fn parse_regex_subset(pattern: &str) -> Vec<RegexElem> {
        let mut elems: Vec<RegexElem> = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = it
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && it.peek() != Some(&']') => {
                                let lo = prev.take().unwrap();
                                let hi = it.next().unwrap();
                                for v in lo as u32..=hi as u32 {
                                    set.push(char::from_u32(v).unwrap());
                                }
                            }
                            '\\' => {
                                if let Some(p) = prev.take() {
                                    set.push(p);
                                }
                                prev = Some(it.next().unwrap());
                            }
                            _ => {
                                if let Some(p) = prev.take() {
                                    set.push(p);
                                }
                                prev = Some(c);
                            }
                        }
                    }
                    if let Some(p) = prev {
                        set.push(p);
                    }
                    assert!(!set.is_empty(), "empty char class in {pattern:?}");
                    elems.push(RegexElem {
                        chars: set,
                        min: 1,
                        max: 1,
                    });
                }
                '{' => {
                    let mut spec = String::new();
                    for c in it.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let elem = elems
                        .last_mut()
                        .unwrap_or_else(|| panic!("dangling quantifier in {pattern:?}"));
                    if let Some((lo, hi)) = spec.split_once(',') {
                        elem.min = lo.trim().parse().unwrap();
                        elem.max = hi.trim().parse().unwrap();
                    } else {
                        let n: u32 = spec.trim().parse().unwrap();
                        elem.min = n;
                        elem.max = n;
                    }
                }
                '\\' => {
                    let escaped = it.next().unwrap();
                    elems.push(RegexElem {
                        chars: vec![escaped],
                        min: 1,
                        max: 1,
                    });
                }
                _ => elems.push(RegexElem {
                    chars: vec![c],
                    min: 1,
                    max: 1,
                }),
            }
        }
        elems
    }

    /// A `&str` literal acts as a regex-subset strategy producing `String`s,
    /// mirroring proptest's string strategies. Supported syntax: literal
    /// chars, `[a-z0-9_']`-style classes, and `{m}`/`{m,n}` quantifiers.
    impl Strategy for &str {
        type Value = String;
        fn sample_one(&self, rng: &mut TestRng) -> Option<String> {
            let elems = parse_regex_subset(self);
            let mut out = String::new();
            for e in &elems {
                let count = e.min + (rng.below((e.max - e.min + 1) as u64) as u32);
                for _ in 0..count {
                    out.push(e.chars[rng.below(e.chars.len() as u64) as usize]);
                }
            }
            Some(out)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_one(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::generate(rng))
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by `collection::vec`: a fixed count or a range.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_one(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample_one(rng)?);
            }
            Some(out)
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `prop::option::of`: yields `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample_one(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.below(4) == 0 {
                Some(None)
            } else {
                self.0.sample_one(rng).map(Some)
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __strategy = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let __max_rejects: u64 = (__config.cases as u64) * 100 + 1000;
            let mut __accepted: u32 = 0;
            let mut __rejected: u64 = 0;
            while __accepted < __config.cases {
                let __sample =
                    $crate::strategy::Strategy::sample_one(&__strategy, &mut __rng);
                let Some(__vals) = __sample else {
                    __rejected += 1;
                    assert!(
                        __rejected <= __max_rejects,
                        "proptest: too many strategy rejections in {}",
                        stringify!($name)
                    );
                    continue;
                };
                let ($($pat,)+) = __vals;
                let __case = move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                match __case() {
                    Ok(()) => __accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __max_rejects,
                            "proptest: too many rejections in {}",
                            stringify!($name)
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            __accepted + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} == {:?}",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    __a,
                    __b,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: {:?} != {:?}", __a, __b);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let s = Strategy::sample_one(&"[a-z][a-z0-9_]{0,8}", &mut rng).unwrap();
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = Strategy::sample_one(&"[a-zA-Z' ]{0,12}", &mut rng).unwrap();
            assert!(t.len() <= 12);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphabetic() || c == '\'' || c == ' '));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_collections(
            v in prop::collection::vec(-5i64..5, 1..10),
            x in 0.25f64..0.75,
            o in prop::option::of(1u32..4),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&i| (-5..5).contains(&i)));
            prop_assert!((0.25..0.75).contains(&x));
            if let Some(u) = o {
                prop_assert!((1..4).contains(&u));
            }
            prop_assume!(flag || v.len() < 100);
            let choice = prop_oneof![Just(1u8), Just(2u8), (3u8..=4).prop_map(|n| n)];
            let c = Strategy::sample_one(&choice, &mut TestRng::for_test("inner")).unwrap();
            prop_assert!((1..=4).contains(&c));
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 0i32..10) {
            prop_assert!((0..10).contains(&n));
        }
    }
}
