//! Offline tuning: the conservative §6 policy.
//!
//! A DBA (or a scheduled job) periodically hands the recent workload to an
//! offline process that runs MNSA for every query and then the Shrinking Set
//! algorithm to eliminate non-essential statistics, leaving a guaranteed
//! essential set whose update cost the server then carries.
//!
//! Run with: `cargo run --example offline_tuning`

use autostats::{advise, Equivalence, MnsaConfig, OfflineTuner};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use query::{bind_statement, BoundStatement};
use stats::StatsCatalog;

fn main() {
    let db = build_tpcd(&TpcdConfig {
        scale: 0.004,
        zipf: ZipfSpec::Fixed(2.0),
        seed: 11,
    });

    // The workload log: 40 complex analytical queries.
    let spec = WorkloadSpec::new(0, Complexity::Complex, 40).with_seed(5);
    let stmts = RagsGenerator::generate(&db, &spec);
    let queries: Vec<_> = stmts
        .iter()
        .filter_map(|s| match bind_statement(&db, s).unwrap() {
            BoundStatement::Select(q) => Some(q),
            _ => None,
        })
        .collect();
    println!("workload {}: {} queries", spec, queries.len());

    let mut catalog = StatsCatalog::new();
    let tuner = OfflineTuner {
        mnsa: MnsaConfig::default(),
        shrink: Some(Equivalence::paper_default()),
        threads: 1,
    };
    let report = tuner
        .tune(&db, &mut catalog, &queries)
        .expect("example runs");

    println!("\noffline tuning pass:");
    println!(
        "  statistics created ........ {}",
        report.statistics_created
    );
    println!(
        "  moved to drop-list ........ {}",
        report.statistics_drop_listed
    );
    println!("  optimizer calls ........... {}", report.optimizer_calls);
    println!("  creation work ............. {:.0}", report.creation_work);
    println!("  analysis overhead work .... {:.0}", report.overhead_work);
    println!(
        "  active statistics after ... {} (of {} built)",
        catalog.active_count(),
        catalog.total_count()
    );

    println!("\nessential set retained for the workload:");
    for stat in catalog.active() {
        let table = db.table(stat.descriptor.table);
        let cols: Vec<&str> = stat
            .descriptor
            .columns
            .iter()
            .map(|&c| table.schema().column(c).name.as_str())
            .collect();
        println!("  {}({})", table.name(), cols.join(", "));
    }

    let update_cost = catalog.update_cost_of(&db, catalog.active_ids());
    println!(
        "\nupdate cost carried forward: {:.0} work units",
        update_cost
    );

    // The same machinery as a read-only what-if advisor: a new month of
    // workload arrives; ask what should change before touching anything.
    let new_spec = WorkloadSpec::new(0, Complexity::Simple, 20).with_seed(99);
    let new_stmts = RagsGenerator::generate(&db, &new_spec);
    let new_queries: Vec<_> = new_stmts
        .iter()
        .filter_map(|s| match bind_statement(&db, s).unwrap() {
            BoundStatement::Select(q) => Some(q),
            _ => None,
        })
        .collect();
    let report = advise(
        &db,
        &catalog,
        &new_queries,
        MnsaConfig::default(),
        Equivalence::paper_default(),
    )
    .expect("example runs");
    println!("\nwhat-if analysis for next month's workload ({new_spec}):");
    print!("{}", report.render(&db));
    println!(
        "(live catalog untouched: {} statistics active)",
        catalog.active_count()
    );
}
