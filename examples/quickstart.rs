//! Quickstart: a self-tuning database in a few lines.
//!
//! Builds a skewed TPC-D instance, wraps it in an [`AutoStatsManager`] whose
//! default policy runs Magic Number Sensitivity Analysis for every incoming
//! query, and shows how the optimizer's plan changes once MNSA has decided
//! which statistics are worth building.
//!
//! Run with: `cargo run --example quickstart`

use autostats::manager::{AutoStatsManager, ManagerConfig};
use autostats::policy::CreationPolicy;
use datagen::{build_tpcd, TpcdConfig, ZipfSpec};
use executor::StatementOutcome;

fn main() {
    // A small, heavily skewed TPC-D database (z varies per column).
    let db = build_tpcd(&TpcdConfig {
        scale: 0.005,
        zipf: ZipfSpec::Mixed,
        seed: 42,
    });
    println!(
        "database: {} tables, {} rows total\n",
        db.table_count(),
        db.total_rows()
    );

    let mut mgr = AutoStatsManager::new(db, ManagerConfig::default());

    let query = "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem \
                 WHERE l_orderkey = o_orderkey AND o_orderdate < 9000 AND l_quantity < 5.0 \
                   AND l_tax >= 0.0 AND o_shippriority <= 1 \
                 GROUP BY o_orderpriority";

    // Before tuning: every predicate runs on magic numbers.
    println!("--- plan before any statistics exist ---");
    print!("{}", mgr.explain_sql(query).unwrap());

    // Executing the query triggers the on-the-fly MNSA policy first.
    let outcome = mgr.execute_sql(query).unwrap();
    if let StatementOutcome::Query {
        output,
        estimated_cost,
    } = &outcome
    {
        println!(
            "\nexecuted: {} groups, estimated cost {:.0}, execution work {:.0}",
            output.row_count(),
            estimated_cost,
            output.work
        );
    }

    println!("\n--- plan after MNSA built what mattered ---");
    print!("{}", mgr.explain_sql(query).unwrap());

    let report = mgr.tuning_report();
    println!(
        "\nMNSA: {} statistics created, {} optimizer calls, creation work {:.0}",
        report.statistics_created, report.optimizer_calls, report.creation_work
    );
    println!("statistics now in the catalog:");
    for stat in mgr.catalog().active() {
        let table = mgr.database().table(stat.descriptor.table);
        let cols: Vec<&str> = stat
            .descriptor
            .columns
            .iter()
            .map(|&c| table.schema().column(c).name.as_str())
            .collect();
        println!(
            "  {} on {}({})  ndv={:.0} nulls={:.1}%",
            stat.id,
            table.name(),
            cols.join(", "),
            stat.leading_ndv(),
            stat.null_fraction * 100.0
        );
    }

    // Contrast with creating every candidate statistic unconditionally (the
    // Figure 4 baseline).
    let db2 = build_tpcd(&TpcdConfig {
        scale: 0.005,
        zipf: ZipfSpec::Mixed,
        seed: 42,
    });
    let mut baseline = AutoStatsManager::new(
        db2,
        ManagerConfig {
            creation: CreationPolicy::CreateAllCandidates,
            ..Default::default()
        },
    );
    baseline.execute_sql(query).unwrap();
    println!(
        "\nfor comparison — create-all-candidates built {} statistics (creation work {:.0}); \
         MNSA built {} (creation work {:.0})",
        baseline.catalog().active_count(),
        baseline.tuning_report().creation_work,
        mgr.catalog().active_count(),
        mgr.tuning_report().creation_work,
    );
}
