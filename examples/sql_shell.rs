//! An interactive SQL shell over the self-tuning database.
//!
//! Loads a skewed TPC-D instance behind an [`AutoStatsManager`] (on-the-fly
//! MNSA/D policy) and reads commands from stdin:
//!
//! ```text
//! autostats> SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority
//! autostats> EXPLAIN SELECT * FROM lineitem WHERE l_quantity < 5.0
//! autostats> .stats        -- list the statistics the policy has built
//! autostats> .maintain     -- run one auto-update/auto-drop pass
//! autostats> .quit
//! ```
//!
//! Run with: `cargo run --example sql_shell` (pipe a script in for
//! non-interactive use, e.g. `echo 'SELECT COUNT(*) FROM orders' | cargo run
//! --example sql_shell`).

use autostats::manager::{AutoStatsManager, ManagerConfig};
use autostats::policy::CreationPolicy;
use autostats::MnsaConfig;
use datagen::{build_tpcd, TpcdConfig, ZipfSpec};
use executor::StatementOutcome;
use std::io::{self, BufRead, Write};

fn main() {
    println!("loading TPC-D (skew: mixed) ...");
    let db = build_tpcd(&TpcdConfig {
        scale: 0.004,
        zipf: ZipfSpec::Mixed,
        seed: 42,
    });
    println!(
        "{} tables, {} rows. Policy: on-the-fly MNSA/D (t = 20%).\n\
         Type SQL, EXPLAIN <sql>, .stats, .maintain, .help or .quit\n",
        db.table_count(),
        db.total_rows()
    );
    let mut mgr = AutoStatsManager::new(
        db,
        ManagerConfig {
            creation: CreationPolicy::Mnsa(MnsaConfig::default().with_drop_detection()),
            ..Default::default()
        },
    );

    let stdin = io::stdin();
    loop {
        print!("autostats> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line.to_ascii_lowercase().as_str() {
            ".quit" | ".exit" => break,
            ".help" => {
                println!(
                    "  <sql>            execute a statement (tuning statistics first)\n  \
                     explain <sql>    show the current plan without executing\n  \
                     .stats           list built statistics (drop-listed ones marked)\n  \
                     .maintain        run one auto-update/auto-drop pass\n  \
                     .report          cumulative tuning and execution totals\n  \
                     .quit            leave"
                );
                continue;
            }
            ".stats" => {
                let db = mgr.database();
                let mut any = false;
                let drop_listed: Vec<_> = mgr.catalog().drop_list().collect();
                // Iterate ids via active() plus drop-list lookups.
                for stat in mgr.catalog().active() {
                    any = true;
                    print_stat(db, stat, false);
                }
                for id in drop_listed {
                    if let Some(stat) = mgr.catalog().statistic(id) {
                        any = true;
                        print_stat(db, stat, true);
                    }
                }
                if !any {
                    println!("  (no statistics built yet)");
                }
                continue;
            }
            ".maintain" => {
                let r = mgr.maintain();
                println!(
                    "  updated {} statistics on {} tables, dropped {}, update work {:.0}",
                    r.statistics_updated,
                    r.tables_updated.len(),
                    r.statistics_dropped,
                    r.update_work
                );
                continue;
            }
            ".report" => {
                let t = mgr.tuning_report();
                println!(
                    "  statistics created {}, drop-listed {}, optimizer calls {}\n  \
                     creation work {:.0} + analysis overhead {:.0}; execution work {:.0}",
                    t.statistics_created,
                    t.statistics_drop_listed,
                    t.optimizer_calls,
                    t.creation_work,
                    t.overhead_work,
                    mgr.execution_work()
                );
                continue;
            }
            _ => {}
        }
        if let Some(rest) = line
            .strip_prefix("explain ")
            .or_else(|| line.strip_prefix("EXPLAIN "))
            .or_else(|| line.strip_prefix("Explain "))
        {
            match mgr.explain_sql(rest) {
                Ok(text) => print!("{text}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match mgr.execute_sql(line) {
            Ok(StatementOutcome::Query {
                output,
                estimated_cost,
            }) => {
                for row in output.rows.iter().take(20) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("  {}", cells.join(" | "));
                }
                if output.rows.len() > 20 {
                    println!("  ... ({} rows total)", output.rows.len());
                }
                println!(
                    "  -- {} rows, estimated cost {:.0}, execution work {:.0}",
                    output.rows.len(),
                    estimated_cost,
                    output.work
                );
            }
            Ok(StatementOutcome::Dml { rows_affected, .. }) => {
                println!("  -- {rows_affected} rows affected");
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}

fn print_stat(db: &storage::Database, stat: &stats::Statistic, dropped: bool) {
    let table = db.table(stat.descriptor.table);
    let cols: Vec<&str> = stat
        .descriptor
        .columns
        .iter()
        .map(|&c| table.schema().column(c).name.as_str())
        .collect();
    println!(
        "  {} {}({})  ndv={:.0} updates={}{}",
        stat.id,
        table.name(),
        cols.join(", "),
        stat.leading_ndv(),
        stat.update_count,
        if dropped { "  [drop-list]" } else { "" }
    );
}
