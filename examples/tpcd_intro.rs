//! The paper's §1 motivating experiment, interactively.
//!
//! On a tuned TPC-D database (13 indexes; statistics exist only on indexed
//! columns), optimize each of the 17 benchmark queries, then create the
//! relevant statistics and re-optimize. The paper observed the plan changed
//! for all but 2 queries. This example prints the before/after plans for the
//! queries whose plans changed.
//!
//! Run with: `cargo run --example tpcd_intro`

use autostats::candidate_statistics;
use datagen::{build_tpcd, create_tuned_indexes, tpcd_benchmark_queries, TpcdConfig, ZipfSpec};
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundStatement, Statement};
use stats::{StatDescriptor, StatsCatalog};

fn main() {
    let mut db = build_tpcd(&TpcdConfig {
        scale: 0.005,
        zipf: ZipfSpec::Mixed,
        seed: 42,
    });
    create_tuned_indexes(&mut db);

    // The tuned baseline: statistics only on indexed leading columns.
    let mut catalog = StatsCatalog::new();
    for idx in db.indexes() {
        catalog
            .create_statistic(&db, StatDescriptor::single(idx.table, idx.leading_column()))
            .expect("example runs");
    }
    println!(
        "tuned TPC-D: {} indexes, {} baseline statistics\n",
        db.indexes().len(),
        catalog.active_count()
    );

    let optimizer = Optimizer::default();
    // Record all "before" plans first (as the paper did), then create the
    // relevant statistics for the whole workload, then re-optimize.
    let queries: Vec<_> = tpcd_benchmark_queries()
        .into_iter()
        .map(
            |q| match bind_statement(&db, &Statement::Select(q)).expect("tpcd query binds") {
                BoundStatement::Select(b) => b,
                _ => unreachable!(),
            },
        )
        .collect();
    let before: Vec<_> = queries
        .iter()
        .map(|q| {
            optimizer
                .optimize(&db, q, catalog.full_view(), &OptimizeOptions::default())
                .expect("example runs")
        })
        .collect();
    for q in &queries {
        for d in candidate_statistics(q) {
            catalog.create_statistic(&db, d).expect("example runs");
        }
    }
    let mut changed = 0usize;
    let mut shown = 0usize;
    for (i, (q, b)) in queries.iter().zip(&before).enumerate() {
        let after = optimizer
            .optimize(&db, q, catalog.full_view(), &OptimizeOptions::default())
            .expect("example runs");
        let did_change = !b.plan.same_tree(&after.plan);
        changed += did_change as usize;
        println!(
            "Q{:<2}: plan {}  estimated cost {:>12.0} -> {:>12.0}",
            i + 1,
            if did_change { "CHANGED  " } else { "unchanged" },
            b.cost,
            after.cost
        );
        if did_change && shown < 2 {
            shown += 1;
            println!("  before:\n{}", indent(&b.plan.to_string()));
            println!("  after:\n{}", indent(&after.plan.to_string()));
        }
    }
    println!(
        "\n{changed} of 17 execution trees changed once statistics existed \
         (paper: 15 of 17 on SQL Server's richer plan space)"
    );
    println!("{} statistics now built", catalog.active_count());
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
