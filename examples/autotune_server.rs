//! A self-tuning "server" under a live mixed workload.
//!
//! Simulates the most aggressive §6 policy: for each incoming query the
//! server runs MNSA/D on the fly (creating only statistics that survive the
//! sensitivity test, drop-listing ones that turn out not to change the
//! plan), while INSERT/DELETE/UPDATE traffic drives the SQL Server-style
//! modification counters and the auto-update/auto-drop maintenance loop.
//!
//! Run with: `cargo run --example autotune_server`

use autostats::manager::{AutoStatsManager, ManagerConfig};
use autostats::policy::CreationPolicy;
use autostats::MnsaConfig;
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use executor::StatementOutcome;
use stats::{AgingPolicy, MaintenancePolicy};

fn main() {
    let db = build_tpcd(&TpcdConfig {
        scale: 0.004,
        zipf: ZipfSpec::Mixed,
        seed: 23,
    });

    // MNSA/D with aging: recently dropped statistics are not immediately
    // re-created when a similar workload repeats.
    let config = ManagerConfig {
        creation: CreationPolicy::Mnsa(
            MnsaConfig {
                aging: Some(AgingPolicy {
                    window_epochs: 3,
                    expensive_query_cost: 1e9,
                }),
                ..MnsaConfig::default()
            }
            .with_drop_detection(),
        ),
        maintenance: MaintenancePolicy {
            update_fraction: 0.15,
            min_modified_rows: 50,
            max_updates: 2,
            drop_only_droplisted: true,
        },
        auto_maintain: true,
        ..Default::default()
    };
    let mut server = AutoStatsManager::new(db, config);

    // Three "days" of traffic: 25% updates, simple queries.
    for day in 1..=3 {
        let spec = WorkloadSpec::new(25, Complexity::Simple, 60).with_seed(100 + day);
        let stmts = RagsGenerator::generate(server.database(), &spec);
        let mut queries = 0usize;
        let mut dml = 0usize;
        let mut work = 0.0;
        for stmt in &stmts {
            match server.execute(stmt) {
                Ok(StatementOutcome::Query { output, .. }) => {
                    queries += 1;
                    work += output.work;
                }
                Ok(StatementOutcome::Dml { work: w, .. }) => {
                    dml += 1;
                    work += w;
                }
                Err(e) => println!("  statement rejected: {e}"),
            }
        }
        let maintenance = server.maintain();
        server.catalog_mut().advance_epoch();
        println!(
            "day {day}: {queries} queries + {dml} DML, execution work {:.0}",
            work
        );
        println!(
            "        statistics: {} active, {} drop-listed; maintenance updated {} stats \
             on {} tables, physically dropped {}",
            server.catalog().active_count(),
            server.catalog().drop_list().count(),
            maintenance.statistics_updated,
            maintenance.tables_updated.len(),
            maintenance.statistics_dropped,
        );
    }

    let report = server.tuning_report();
    println!("\ncumulative tuning:");
    println!("  statistics created ... {}", report.statistics_created);
    println!("  drop-listed .......... {}", report.statistics_drop_listed);
    println!("  optimizer calls ...... {}", report.optimizer_calls);
    println!(
        "  creation work {:.0} + overhead {:.0} vs execution work {:.0}",
        report.creation_work,
        report.overhead_work,
        server.execution_work()
    );
}
