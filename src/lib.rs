//! Umbrella crate for the reproduction workspace.
//!
//! Re-exports every sub-crate so integration tests and examples can use a
//! single dependency. The real public API lives in [`autostats`].

pub use autostats;
pub use datagen;
pub use executor;
pub use optimizer;
pub use query;
pub use stats;
pub use storage;
